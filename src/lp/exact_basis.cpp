#include "lp/exact_basis.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "lp/basis_lu.h"
#include "lp/sparse.h"
#include "num/reconstruct.h"

namespace ssco::lp {

SparseColumns SparseColumns::transposed() const {
  SparseColumns t;
  t.n = n;
  t.cols.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [i, v] : cols[j]) {
      t.cols[i].emplace_back(j, v);
    }
  }
  return t;
}

std::vector<Rational> SparseColumns::multiply(
    const std::vector<Rational>& x) const {
  std::vector<Rational> y(n, Rational(0));
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j].is_zero()) continue;
    for (const auto& [i, v] : cols[j]) {
      y[i].add_product(v, x[j]);
    }
  }
  return y;
}

std::vector<Rational> SparseColumns::multiply_transposed(
    const std::vector<Rational>& y) const {
  std::vector<Rational> x(n, Rational(0));
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [i, v] : cols[j]) {
      x[j].add_product(v, y[i]);
    }
  }
  return x;
}

namespace {

/// Floating-point image of the rational matrix, factored by the shared
/// sparse LU of the simplex basis (lp/basis_lu.h) — the float kernel the
/// exact refinement iterates against.
std::optional<BasisLu> factor_double_image(const SparseColumns& m) {
  CscMatrix a(m.n);
  std::size_t nnz = 0;
  for (const auto& col : m.cols) nnz += col.size();
  a.reserve(m.n, nnz);
  for (std::size_t j = 0; j < m.n; ++j) {
    for (const auto& [i, v] : m.cols[j]) {
      a.push_entry(i, v.to_double());
    }
    a.end_column();
  }
  std::vector<std::size_t> columns(m.n);
  std::iota(columns.begin(), columns.end(), std::size_t{0});
  return BasisLu::factor(a, columns);
}

/// Power-of-two magnitude of a rational: ~floor(log2 |x|); 0 for zero.
int log2_magnitude(const Rational& x) {
  if (x.is_zero()) return std::numeric_limits<int>::min();
  return static_cast<int>(x.num().bit_length()) -
         static_cast<int>(x.den().bit_length());
}

Rational pow2(int k) {
  if (k >= 0) {
    return Rational(BigInt::pow(BigInt(2), static_cast<unsigned>(k)));
  }
  return Rational(BigInt(1), BigInt::pow(BigInt(2), static_cast<unsigned>(-k)));
}

}  // namespace

namespace {

/// Exact iterative refinement of one system against a shared factorization:
/// M x = rhs via FTRAN, or M' x = rhs via BTRAN when `transposed`.
std::optional<std::vector<Rational>> refine_exact(
    const SparseColumns& matrix, const BasisLu& lu, bool transposed,
    const std::vector<Rational>& rhs, const ExactSolveOptions& options) {
  const std::size_t n = matrix.n;
  auto apply_exact = [&](const std::vector<Rational>& x) {
    return transposed ? matrix.multiply_transposed(x) : matrix.multiply(x);
  };

  std::vector<Rational> x_acc(n, Rational(0));
  std::vector<Rational> residual = rhs;
  BasisLu::Workspace lu_ws;

  // Bits of accuracy gained so far (estimate; verification is exact anyway).
  int accuracy_bits = 0;

  for (int iteration = 0; iteration < options.max_refinements; ++iteration) {
    // Scale the residual to O(1) with a power of two so the double solve
    // operates at full precision regardless of how tiny the residual got.
    int scale_log = std::numeric_limits<int>::min();
    for (const Rational& r : residual) {
      if (!r.is_zero()) scale_log = std::max(scale_log, log2_magnitude(r));
    }
    if (scale_log == std::numeric_limits<int>::min()) {
      return x_acc;  // residual is exactly zero
    }
    Rational scale = pow2(scale_log);
    Rational inv_scale = pow2(-scale_log);

    std::vector<double> correction(n);
    for (std::size_t i = 0; i < n; ++i) {
      correction[i] = (residual[i] * inv_scale).to_double();
    }
    if (transposed) {
      lu.btran(correction, lu_ws);
    } else {
      lu.ftran(correction, lu_ws);
    }

    // x += scale * correction (exact: every double is a dyadic rational).
    for (std::size_t i = 0; i < n; ++i) {
      if (correction[i] != 0.0) {
        x_acc[i] += scale * num::exact_rational_from_double(correction[i]);
      }
    }
    // residual = rhs - M x  (exact).
    residual = rhs;
    std::vector<Rational> mx = apply_exact(x_acc);
    for (std::size_t i = 0; i < n; ++i) residual[i] -= mx[i];
    accuracy_bits += 40;  // conservative per-pass gain

    const bool last = iteration + 1 == options.max_refinements;
    if ((iteration + 1) % options.reconstruct_every == 0 || last) {
      // Reconstruct with denominators up to ~2^(accuracy/2 - margin).
      int den_bits = accuracy_bits / 2 - 8;
      if (den_bits < 4) continue;
      BigInt max_den = BigInt::pow(BigInt(2), static_cast<unsigned>(den_bits));
      std::vector<Rational> candidate(n);
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = num::rational_reconstruct(x_acc[i], max_den);
      }
      // Unconditional exact verification.
      std::vector<Rational> check = apply_exact(candidate);
      bool ok = true;
      for (std::size_t i = 0; i < n && ok; ++i) {
        ok = check[i] == rhs[i];
      }
      if (ok) return candidate;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Rational>> solve_sparse_exact(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const ExactSolveOptions& options) {
  if (matrix.n != rhs.size()) return std::nullopt;
  if (matrix.n == 0) return std::vector<Rational>{};

  auto lu = factor_double_image(matrix);
  if (!lu) return std::nullopt;
  return refine_exact(matrix, *lu, /*transposed=*/false, rhs, options);
}

std::optional<ExactBasisSolves> solve_sparse_exact_pair(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const std::vector<Rational>& rhs_transposed,
    const ExactSolveOptions& options) {
  if (matrix.n != rhs.size() || matrix.n != rhs_transposed.size()) {
    return std::nullopt;
  }
  if (matrix.n == 0) return ExactBasisSolves{};

  auto lu = factor_double_image(matrix);
  if (!lu) return std::nullopt;
  auto straight = refine_exact(matrix, *lu, /*transposed=*/false, rhs, options);
  if (!straight) return std::nullopt;
  auto transposed =
      refine_exact(matrix, *lu, /*transposed=*/true, rhs_transposed, options);
  if (!transposed) return std::nullopt;
  return ExactBasisSolves{std::move(*straight), std::move(*transposed)};
}

}  // namespace ssco::lp
