#include "lp/exact_basis.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "lp/basis_lu.h"
#include "lp/sparse.h"
#include "num/reconstruct.h"

namespace ssco::lp {

SparseColumns SparseColumns::transposed() const {
  SparseColumns t;
  t.n = n;
  t.cols.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [i, v] : cols[j]) {
      t.cols[i].emplace_back(j, v);
    }
  }
  return t;
}

std::vector<Rational> SparseColumns::multiply(
    const std::vector<Rational>& x) const {
  std::vector<Rational> y(n, Rational(0));
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j].is_zero()) continue;
    for (const auto& [i, v] : cols[j]) {
      y[i].add_product(v, x[j]);
    }
  }
  return y;
}

std::vector<Rational> SparseColumns::multiply_transposed(
    const std::vector<Rational>& y) const {
  std::vector<Rational> x(n, Rational(0));
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [i, v] : cols[j]) {
      x[j].add_product(v, y[i]);
    }
  }
  return x;
}

namespace {

/// Floating-point image of the rational matrix, factored by the shared
/// sparse LU of the simplex basis (lp/basis_lu.h) — the float kernel the
/// exact refinement iterates against.
std::optional<BasisLu> factor_double_image(const SparseColumns& m) {
  CscMatrix a(m.n);
  std::size_t nnz = 0;
  for (const auto& col : m.cols) nnz += col.size();
  a.reserve(m.n, nnz);
  for (std::size_t j = 0; j < m.n; ++j) {
    for (const auto& [i, v] : m.cols[j]) {
      a.push_entry(i, v.to_double());
    }
    a.end_column();
  }
  std::vector<std::size_t> columns(m.n);
  std::iota(columns.begin(), columns.end(), std::size_t{0});
  // The preorder only changes the float kernel's rounding, and refinement
  // iterates to the exact rational answer regardless — so take the fill
  // (and speed) win unconditionally here.
  BasisLu::Options options;
  options.fill_preorder = true;
  return BasisLu::factor(a, columns, options);
}

/// Power-of-two magnitude of a rational: ~floor(log2 |x|); 0 for zero.
int log2_magnitude(const Rational& x) {
  if (x.is_zero()) return std::numeric_limits<int>::min();
  return static_cast<int>(x.num().bit_length()) -
         static_cast<int>(x.den().bit_length());
}

Rational pow2(int k) {
  if (k >= 0) {
    return Rational(BigInt::pow(BigInt(2), static_cast<unsigned>(k)));
  }
  return Rational(BigInt(1), BigInt::pow(BigInt(2), static_cast<unsigned>(-k)));
}

}  // namespace

namespace {

/// Shard granularities for the exact element loops: rational big-int work is
/// expensive per item, so shards can be fine; plain element updates need
/// coarser slices before forking pays for itself.
constexpr std::size_t kMinReconstructPerShard = 8;
constexpr std::size_t kMinColumnsPerShard = 32;
constexpr std::size_t kMinElementsPerShard = 128;

/// M * x with per-shard partial outputs merged shard-major — exact
/// arithmetic makes every grouping produce the canonical value, so this is
/// bit-identical to SparseColumns::multiply at any shard count.
std::vector<Rational> multiply_parallel(const SparseColumns& m,
                                        const std::vector<Rational>& x,
                                        const Parallel& par) {
  const std::size_t shards = par.shard_count(m.n, kMinColumnsPerShard);
  if (shards <= 1) return m.multiply(x);
  std::vector<ShardLocal<std::vector<Rational>>> partial(shards);
  par.for_shards(m.n, kMinColumnsPerShard,
                 [&](std::size_t shard, std::size_t begin, std::size_t end) {
                   auto& y = partial[shard].value;
                   y.assign(m.n, Rational(0));
                   for (std::size_t j = begin; j < end; ++j) {
                     if (x[j].is_zero()) continue;
                     for (const auto& [i, v] : m.cols[j]) {
                       y[i].add_product(v, x[j]);
                     }
                   }
                 });
  std::vector<Rational> y = std::move(partial[0].value);
  for (std::size_t s = 1; s < shards; ++s) {
    for (std::size_t i = 0; i < m.n; ++i) {
      if (!partial[s].value[i].is_zero()) y[i] += partial[s].value[i];
    }
  }
  return y;
}

/// M' * y: each output component is one independent column dot, so plain
/// range sharding preserves bit-identity for free.
std::vector<Rational> multiply_transposed_parallel(
    const SparseColumns& m, const std::vector<Rational>& y,
    const Parallel& par) {
  std::vector<Rational> x(m.n, Rational(0));
  par.for_shards(m.n, kMinColumnsPerShard,
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t j = begin; j < end; ++j) {
                     for (const auto& [i, v] : m.cols[j]) {
                       x[j].add_product(v, y[i]);
                     }
                   }
                 });
  return x;
}

/// Exact iterative refinement of one system against a shared factorization:
/// M x = rhs via FTRAN, or M' x = rhs via BTRAN when `transposed`.
std::optional<std::vector<Rational>> refine_exact(
    const SparseColumns& matrix, const BasisLu& lu, bool transposed,
    const std::vector<Rational>& rhs, const ExactSolveOptions& options,
    const Parallel& par = {}) {
  const std::size_t n = matrix.n;
  auto apply_exact = [&](const std::vector<Rational>& x) {
    return transposed ? multiply_transposed_parallel(matrix, x, par)
                      : multiply_parallel(matrix, x, par);
  };

  std::vector<Rational> x_acc(n, Rational(0));
  std::vector<Rational> residual = rhs;
  BasisLu::Workspace lu_ws;

  // Bits of accuracy gained so far (estimate; verification is exact anyway).
  int accuracy_bits = 0;

  for (int iteration = 0; iteration < options.max_refinements; ++iteration) {
    // Scale the residual to O(1) with a power of two so the double solve
    // operates at full precision regardless of how tiny the residual got.
    int scale_log = std::numeric_limits<int>::min();
    for (const Rational& r : residual) {
      if (!r.is_zero()) scale_log = std::max(scale_log, log2_magnitude(r));
    }
    if (scale_log == std::numeric_limits<int>::min()) {
      return x_acc;  // residual is exactly zero
    }
    Rational scale = pow2(scale_log);
    Rational inv_scale = pow2(-scale_log);

    std::vector<double> correction(n);
    par.for_shards(n, kMinElementsPerShard,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       correction[i] = (residual[i] * inv_scale).to_double();
                     }
                   });
    if (transposed) {
      lu.btran(correction, lu_ws);
    } else {
      lu.ftran(correction, lu_ws);
    }

    // x += scale * correction (exact: every double is a dyadic rational);
    // residual = rhs - M x (exact). Both element-independent, so sharding
    // cannot change a single bit.
    par.for_shards(n, kMinElementsPerShard,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       if (correction[i] != 0.0) {
                         x_acc[i] +=
                             scale * num::exact_rational_from_double(correction[i]);
                       }
                     }
                   });
    std::vector<Rational> mx = apply_exact(x_acc);
    residual = rhs;
    par.for_shards(n, kMinElementsPerShard,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       residual[i] -= mx[i];
                     }
                   });
    accuracy_bits += 40;  // conservative per-pass gain

    const bool last = iteration + 1 == options.max_refinements;
    if ((iteration + 1) % options.reconstruct_every == 0 || last) {
      // Reconstruct with denominators up to ~2^(accuracy/2 - margin).
      int den_bits = accuracy_bits / 2 - 8;
      if (den_bits < 4) continue;
      BigInt max_den = BigInt::pow(BigInt(2), static_cast<unsigned>(den_bits));
      std::vector<Rational> candidate(n);
      par.for_shards(n, kMinReconstructPerShard,
                     [&](std::size_t, std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         candidate[i] =
                             num::rational_reconstruct(x_acc[i], max_den);
                       }
                     });
      // Unconditional exact verification.
      std::vector<Rational> check = apply_exact(candidate);
      bool ok = true;
      for (std::size_t i = 0; i < n && ok; ++i) {
        ok = check[i] == rhs[i];
      }
      if (ok) return candidate;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Rational>> solve_sparse_exact(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const ExactSolveOptions& options) {
  if (matrix.n != rhs.size()) return std::nullopt;
  if (matrix.n == 0) return std::vector<Rational>{};

  auto lu = factor_double_image(matrix);
  if (!lu) return std::nullopt;
  return refine_exact(matrix, *lu, /*transposed=*/false, rhs, options);
}

std::optional<ExactBasisSolves> solve_sparse_exact_pair(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const std::vector<Rational>& rhs_transposed,
    const ExactSolveOptions& options, const Parallel& parallel) {
  if (matrix.n != rhs.size() || matrix.n != rhs_transposed.size()) {
    return std::nullopt;
  }
  if (matrix.n == 0) return ExactBasisSolves{};

  auto lu = factor_double_image(matrix);
  if (!lu) return std::nullopt;
  if (parallel.is_serial()) {
    auto straight =
        refine_exact(matrix, *lu, /*transposed=*/false, rhs, options);
    if (!straight) return std::nullopt;
    auto transposed = refine_exact(matrix, *lu, /*transposed=*/true,
                                   rhs_transposed, options);
    if (!transposed) return std::nullopt;
    return ExactBasisSolves{std::move(*straight), std::move(*transposed)};
  }
  // The two refinements are independent (each brings its own
  // BasisLu::Workspace; the LU is const-shared), so run them concurrently
  // and split the thread budget between their internal shard loops.
  Parallel half = parallel;
  half.threads = std::max<std::size_t>(1, parallel.threads / 2);
  std::optional<std::vector<Rational>> straight;
  std::optional<std::vector<Rational>> transposed;
  parallel.invoke_all({
      [&] {
        straight =
            refine_exact(matrix, *lu, /*transposed=*/false, rhs, options, half);
      },
      [&] {
        transposed = refine_exact(matrix, *lu, /*transposed=*/true,
                                  rhs_transposed, options, half);
      },
  });
  if (!straight || !transposed) return std::nullopt;
  return ExactBasisSolves{std::move(*straight), std::move(*transposed)};
}

}  // namespace ssco::lp
