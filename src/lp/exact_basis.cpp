#include "lp/exact_basis.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "num/reconstruct.h"

namespace ssco::lp {

SparseColumns SparseColumns::transposed() const {
  SparseColumns t;
  t.n = n;
  t.cols.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [i, v] : cols[j]) {
      t.cols[i].emplace_back(j, v);
    }
  }
  return t;
}

std::vector<Rational> SparseColumns::multiply(
    const std::vector<Rational>& x) const {
  std::vector<Rational> y(n, Rational(0));
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j].is_zero()) continue;
    for (const auto& [i, v] : cols[j]) {
      y[i] += v * x[j];
    }
  }
  return y;
}

namespace {

/// Dense double LU with partial pivoting; empty on singularity.
class DoubleLu {
 public:
  static std::optional<DoubleLu> factor(const SparseColumns& m) {
    DoubleLu lu;
    lu.n_ = m.n;
    lu.a_.assign(m.n * m.n, 0.0);
    for (std::size_t j = 0; j < m.n; ++j) {
      for (const auto& [i, v] : m.cols[j]) {
        lu.a_[i * m.n + j] = v.to_double();
      }
    }
    lu.perm_.resize(m.n);
    for (std::size_t i = 0; i < m.n; ++i) lu.perm_[i] = i;

    for (std::size_t k = 0; k < m.n; ++k) {
      // Partial pivot.
      std::size_t pivot = k;
      double best = std::fabs(lu.at(k, k));
      for (std::size_t i = k + 1; i < m.n; ++i) {
        double cand = std::fabs(lu.at(i, k));
        if (cand > best) {
          best = cand;
          pivot = i;
        }
      }
      if (best < 1e-12) return std::nullopt;  // numerically singular
      if (pivot != k) {
        for (std::size_t j = 0; j < m.n; ++j) {
          std::swap(lu.a_[pivot * m.n + j], lu.a_[k * m.n + j]);
        }
        std::swap(lu.perm_[pivot], lu.perm_[k]);
      }
      const double inv = 1.0 / lu.at(k, k);
      for (std::size_t i = k + 1; i < m.n; ++i) {
        double factor = lu.at(i, k) * inv;
        lu.a_[i * m.n + k] = factor;
        if (factor == 0.0) continue;
        for (std::size_t j = k + 1; j < m.n; ++j) {
          lu.a_[i * m.n + j] -= factor * lu.at(k, j);
        }
      }
    }
    return lu;
  }

  /// Solves M x = b (double precision).
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const {
    std::vector<double> x(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
    // Forward substitution (unit lower triangle).
    for (std::size_t i = 1; i < n_; ++i) {
      double sum = x[i];
      for (std::size_t j = 0; j < i; ++j) sum -= at(i, j) * x[j];
      x[i] = sum;
    }
    // Back substitution.
    for (std::size_t i = n_; i-- > 0;) {
      double sum = x[i];
      for (std::size_t j = i + 1; j < n_; ++j) sum -= at(i, j) * x[j];
      x[i] = sum / at(i, i);
    }
    return x;
  }

 private:
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return a_[i * n_ + j];
  }
  std::size_t n_ = 0;
  std::vector<double> a_;
  std::vector<std::size_t> perm_;
};

/// Power-of-two magnitude of a rational: ~floor(log2 |x|); 0 for zero.
int log2_magnitude(const Rational& x) {
  if (x.is_zero()) return std::numeric_limits<int>::min();
  return static_cast<int>(x.num().bit_length()) -
         static_cast<int>(x.den().bit_length());
}

Rational pow2(int k) {
  if (k >= 0) {
    return Rational(BigInt::pow(BigInt(2), static_cast<unsigned>(k)));
  }
  return Rational(BigInt(1), BigInt::pow(BigInt(2), static_cast<unsigned>(-k)));
}

}  // namespace

std::optional<std::vector<Rational>> solve_sparse_exact(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const ExactSolveOptions& options) {
  if (matrix.n != rhs.size()) return std::nullopt;
  if (matrix.n == 0) return std::vector<Rational>{};

  auto lu = DoubleLu::factor(matrix);
  if (!lu) return std::nullopt;

  const std::size_t n = matrix.n;
  std::vector<Rational> x_acc(n, Rational(0));
  std::vector<Rational> residual = rhs;

  // Bits of accuracy gained so far (estimate; verification is exact anyway).
  int accuracy_bits = 0;

  for (int iteration = 0; iteration < options.max_refinements; ++iteration) {
    // Scale the residual to O(1) with a power of two so the double solve
    // operates at full precision regardless of how tiny the residual got.
    int scale_log = std::numeric_limits<int>::min();
    for (const Rational& r : residual) {
      if (!r.is_zero()) scale_log = std::max(scale_log, log2_magnitude(r));
    }
    if (scale_log == std::numeric_limits<int>::min()) {
      return x_acc;  // residual is exactly zero
    }
    Rational scale = pow2(scale_log);
    Rational inv_scale = pow2(-scale_log);

    std::vector<double> r_scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      r_scaled[i] = (residual[i] * inv_scale).to_double();
    }
    std::vector<double> correction = lu->solve(r_scaled);

    // x += scale * correction (exact: every double is a dyadic rational).
    for (std::size_t i = 0; i < n; ++i) {
      if (correction[i] != 0.0) {
        x_acc[i] += scale * num::exact_rational_from_double(correction[i]);
      }
    }
    // residual = rhs - M x  (exact).
    residual = rhs;
    std::vector<Rational> mx = matrix.multiply(x_acc);
    for (std::size_t i = 0; i < n; ++i) residual[i] -= mx[i];
    accuracy_bits += 40;  // conservative per-pass gain

    const bool last = iteration + 1 == options.max_refinements;
    if ((iteration + 1) % options.reconstruct_every == 0 || last) {
      // Reconstruct with denominators up to ~2^(accuracy/2 - margin).
      int den_bits = accuracy_bits / 2 - 8;
      if (den_bits < 4) continue;
      BigInt max_den = BigInt::pow(BigInt(2), static_cast<unsigned>(den_bits));
      std::vector<Rational> candidate(n);
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = num::rational_reconstruct(x_acc[i], max_den);
      }
      // Unconditional exact verification.
      std::vector<Rational> check = matrix.multiply(candidate);
      bool ok = true;
      for (std::size_t i = 0; i < n && ok; ++i) {
        ok = check[i] == rhs[i];
      }
      if (ok) return candidate;
    }
  }
  return std::nullopt;
}

}  // namespace ssco::lp
