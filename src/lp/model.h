#pragma once
// Linear-program model container.
//
// The steady-state LPs of the paper (SSSP Sec. 3.1, SSPA2A Sec. 3.5, SSR
// Sec. 4.2) are built into this structure by the src/core builders. All
// coefficients are exact rationals; the solvers convert to double for the
// warm-start phase and keep the rational data for certificate checking.
//
// Conventions:
//  * variables have a lower bound (default 0) and an optional upper bound;
//  * rows are `expr <sense> rhs` with sense in {<=, ==, >=};
//  * the objective is always MAXIMIZED (the paper maximizes throughput TP).

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "num/rational.h"

namespace ssco::lp {

using num::BigInt;
using num::Rational;

/// Index of a decision variable within a Model.
struct VarId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const {
    return index != static_cast<std::size_t>(-1);
  }
  friend bool operator==(VarId, VarId) = default;
};

/// Index of a constraint row within a Model.
struct RowId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const {
    return index != static_cast<std::size_t>(-1);
  }
  friend bool operator==(RowId, RowId) = default;
};

enum class Sense { kLessEqual, kEqual, kGreaterEqual };

/// Sparse linear expression: sum of coeff * var. Duplicate variable mentions
/// are allowed and are summed when the row is ingested.
class LinearExpr {
 public:
  LinearExpr& add(VarId var, Rational coeff) {
    terms_.emplace_back(var, std::move(coeff));
    return *this;
  }
  [[nodiscard]] const std::vector<std::pair<VarId, Rational>>& terms() const {
    return terms_;
  }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

 private:
  std::vector<std::pair<VarId, Rational>> terms_;
};

class Model {
 public:
  /// Adds a variable with bounds [lower, upper]; `upper == nullopt` means +inf.
  VarId add_variable(std::string name, Rational lower = Rational(0),
                     std::optional<Rational> upper = std::nullopt);

  /// Sets the objective coefficient of `var` (default 0).
  void set_objective(VarId var, Rational coeff);

  /// Adds a row `expr <sense> rhs`. Duplicate variables in expr are summed.
  RowId add_constraint(const LinearExpr& expr, Sense sense, Rational rhs,
                       std::string name = {});

  /// Column-generation append: a new variable (lower bound 0, no upper
  /// bound) whose coefficients land in EXISTING rows. `entries` must name
  /// distinct valid rows; zero coefficients are dropped. Because the new
  /// variable has the largest index, every touched row's sorted coefficient
  /// list stays sorted — the append is O(|entries|).
  VarId add_column(std::string name, Rational objective,
                   const std::vector<std::pair<RowId, Rational>>& entries);

  [[nodiscard]] std::size_t num_variables() const { return var_names_.size(); }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_nonzeros() const;

  [[nodiscard]] const std::string& variable_name(VarId v) const {
    return var_names_[v.index];
  }
  [[nodiscard]] const Rational& lower_bound(VarId v) const {
    return lower_[v.index];
  }
  [[nodiscard]] const std::optional<Rational>& upper_bound(VarId v) const {
    return upper_[v.index];
  }
  [[nodiscard]] const Rational& objective_coeff(VarId v) const {
    return objective_[v.index];
  }
  [[nodiscard]] const std::vector<Rational>& objective() const {
    return objective_;
  }

  struct Row {
    std::string name;
    std::vector<std::pair<std::size_t, Rational>> coeffs;  // sorted by var index
    Sense sense = Sense::kLessEqual;
    Rational rhs;
  };
  [[nodiscard]] const Row& row(RowId r) const { return rows_[r.index]; }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

  /// Exact evaluation of row `r`'s left-hand side at point `x`
  /// (x indexed by variable).
  [[nodiscard]] Rational eval_row(RowId r,
                                  const std::vector<Rational>& x) const;
  /// Exact objective value at `x`.
  [[nodiscard]] Rational eval_objective(const std::vector<Rational>& x) const;

  /// True when `x` satisfies every bound and row exactly.
  [[nodiscard]] bool is_feasible(const std::vector<Rational>& x) const;

 private:
  std::vector<std::string> var_names_;
  std::vector<Rational> lower_;
  std::vector<std::optional<Rational>> upper_;
  std::vector<Rational> objective_;
  std::vector<Row> rows_;
};

}  // namespace ssco::lp
