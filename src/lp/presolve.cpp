#include "lp/presolve.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

namespace ssco::lp {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Effective sense of an original row once a negative RHS is flipped — the
/// convention under which ColumnLayout assigns slack/surplus/artificial
/// identity columns.
Sense effective_sense(Sense s, bool flipped) {
  if (!flipped) return s;
  if (s == Sense::kLessEqual) return Sense::kGreaterEqual;
  if (s == Sense::kGreaterEqual) return Sense::kLessEqual;
  return Sense::kEqual;
}

}  // namespace

BasisColumn Presolved::identity_column(std::size_t row) const {
  switch (effective_sense(row_sense_[row], row_flipped_[row] != 0)) {
    case Sense::kLessEqual:
      return {BasisColumn::Kind::kSlack, row};
    case Sense::kGreaterEqual:
      return {BasisColumn::Kind::kSurplus, row};
    case Sense::kEqual:
      break;
  }
  return {BasisColumn::Kind::kArtificial, row};
}

Presolved presolve(const ExpandedModel& em) {
  Presolved out;
  const std::size_t m = em.rows.size();
  const std::size_t n = em.num_vars;
  out.orig_rows_ = m;
  out.orig_vars_ = n;
  out.row_sense_.resize(m);
  out.row_flipped_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.row_sense_[i] = em.rows[i].sense;
    out.row_flipped_[i] = em.rows[i].rhs.is_negative() ? 1 : 0;
  }

  // Working state. Coefficients are never modified — substituting a fixed
  // variable only adjusts the RHS and the live count, so original coeff
  // data can be shared by reference throughout.
  std::vector<Rational> rhs(m);
  for (std::size_t i = 0; i < m; ++i) rhs[i] = em.rows[i].rhs;
  std::vector<char> row_alive(m, 1);
  std::vector<char> var_fixed(n, 0);
  std::vector<std::size_t> live_count(m, 0);
  std::vector<std::vector<std::size_t>> col_rows(n);
  for (std::size_t i = 0; i < m; ++i) {
    live_count[i] = em.rows[i].coeffs.size();
    for (const auto& [idx, coeff] : em.rows[i].coeffs) {
      col_rows[idx].push_back(i);
    }
  }

  std::vector<std::size_t> worklist;
  std::vector<char> in_work(m, 0);
  worklist.reserve(m);
  for (std::size_t i = m; i-- > 0;) {
    worklist.push_back(i);
    in_work[i] = 1;
  }
  auto push_work = [&](std::size_t row) {
    if (!in_work[row] && row_alive[row]) {
      in_work[row] = 1;
      worklist.push_back(row);
    }
  };

  bool infeasible = false;

  auto coeff_in_row = [&](std::size_t row, std::size_t var) -> const Rational* {
    const auto& coeffs = em.rows[row].coeffs;
    auto it = std::lower_bound(
        coeffs.begin(), coeffs.end(), var,
        [](const auto& entry, std::size_t v) { return entry.first < v; });
    return (it != coeffs.end() && it->first == var) ? &it->second : nullptr;
  };

  auto record_fixed = [&](std::size_t var, Rational value) {
    Presolved::FixedVar fv;
    fv.var = var;
    fv.value = std::move(value);
    fv.objective = em.objective[var];
    fv.column.reserve(col_rows[var].size());
    for (std::size_t r : col_rows[var]) {
      fv.column.emplace_back(r, *coeff_in_row(r, var));
    }
    out.fixed_.push_back(std::move(fv));
    return out.fixed_.size() - 1;
  };

  /// Substitutes a just-fixed variable out of every live row.
  auto apply_fix = [&](std::size_t var, const Rational& value) {
    var_fixed[var] = 1;
    for (std::size_t r : col_rows[var]) {
      if (!row_alive[r]) continue;
      if (!value.is_zero()) {
        rhs[r].sub_product(*coeff_in_row(r, var), value);
      }
      --live_count[r];
      push_work(r);
    }
  };

  auto drop_redundant = [&](std::size_t row) {
    row_alive[row] = 0;
    out.actions_.push_back(
        {Presolved::Action::Kind::kDropRedundantRow, row, {}});
  };

  std::vector<std::pair<std::size_t, const Rational*>> live;

  while (!worklist.empty() && !infeasible) {
    const std::size_t row = worklist.back();
    worklist.pop_back();
    in_work[row] = 0;
    if (!row_alive[row]) continue;

    live.clear();
    for (const auto& [idx, coeff] : em.rows[row].coeffs) {
      if (!var_fixed[idx]) live.emplace_back(idx, &coeff);
    }
    const Sense s = em.rows[row].sense;
    const int rsig = rhs[row].signum();

    if (live.empty()) {
      // 0 <sense> rhs: either vacuous or an exact proof of infeasibility.
      const bool ok = s == Sense::kLessEqual   ? rsig >= 0
                      : s == Sense::kEqual     ? rsig == 0
                                               : rsig <= 0;
      if (ok) {
        drop_redundant(row);
      } else {
        infeasible = true;
      }
      continue;
    }

    if (live.size() == 1) {
      const auto [var, coeff] = live.front();
      if (s == Sense::kEqual) {
        Rational value = rhs[row] / *coeff;
        if (value.is_negative()) {
          infeasible = true;
          continue;
        }
        const std::size_t fi = record_fixed(var, std::move(value));
        out.actions_.push_back(
            {Presolved::Action::Kind::kFixByEquality, row, {fi}});
        row_alive[row] = 0;
        apply_fix(var, out.fixed_[fi].value);
        continue;
      }
      // One-sided singleton: a*x <sense> rhs over x >= 0.
      const bool upper = (s == Sense::kLessEqual) == (coeff->signum() > 0);
      const Rational bound = rhs[row] / *coeff;
      const int bsig = bound.signum();
      if (upper) {
        if (bsig < 0) {
          infeasible = true;
        } else if (bsig == 0) {
          // x <= 0 over x >= 0: a single-variable forcing row.
          const std::size_t fi = record_fixed(var, Rational(0));
          out.actions_.push_back(
              {Presolved::Action::Kind::kDropForcingRow, row, {fi}});
          row_alive[row] = 0;
          apply_fix(var, out.fixed_[fi].value);
        }
        // else: a live upper bound; the row stays.
      } else {
        if (bsig <= 0) drop_redundant(row);  // x >= nonpositive: vacuous
        // else: a live lower bound; the row stays.
      }
      continue;
    }

    // Multi-entry rows: sign analysis for forcing / vacuous / infeasible.
    bool all_pos = true;
    bool all_neg = true;
    for (const auto& [idx, coeff] : live) {
      (void)idx;
      if (coeff->signum() > 0) {
        all_neg = false;
      } else {
        all_pos = false;
      }
    }
    if (!all_pos && !all_neg) continue;
    // The attainable extreme of the live LHS over x >= 0 is zero (from
    // below when all positive, from above when all negative).
    bool forcing = false;
    if (all_pos) {
      if (s == Sense::kGreaterEqual) {
        if (rsig <= 0) drop_redundant(row);
      } else if (rsig < 0) {
        infeasible = true;
      } else if (rsig == 0) {
        forcing = true;
      }
    } else {  // all_neg
      if (s == Sense::kLessEqual) {
        if (rsig >= 0) drop_redundant(row);
      } else if (rsig > 0) {
        infeasible = true;
      } else if (rsig == 0) {
        forcing = true;
      }
    }
    if (!forcing) continue;
    Presolved::Action action{Presolved::Action::Kind::kDropForcingRow, row, {}};
    action.fixed.reserve(live.size());
    for (const auto& [idx, coeff] : live) {
      (void)coeff;
      action.fixed.push_back(record_fixed(idx, Rational(0)));
    }
    row_alive[row] = 0;
    for (std::size_t fi : action.fixed) {
      apply_fix(out.fixed_[fi].var, out.fixed_[fi].value);
    }
    out.actions_.push_back(std::move(action));
  }

  // Duplicate / proportional rows: group by an order-insensitive signature
  // of the normalized live pattern, verify proportionality exactly, keep
  // only the tightest row per direction. Runs once after the fixpoint —
  // dropping a row cannot enable further reductions.
  if (!infeasible) {
    auto live_of = [&](std::size_t row,
                       std::vector<std::pair<std::size_t, const Rational*>>&
                           entries) {
      entries.clear();
      for (const auto& [idx, coeff] : em.rows[row].coeffs) {
        if (!var_fixed[idx]) entries.emplace_back(idx, &coeff);
      }
    };
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    std::vector<std::pair<std::size_t, const Rational*>> a_live, b_live;
    for (std::size_t i = 0; i < m; ++i) {
      if (!row_alive[i]) continue;
      live_of(i, a_live);
      if (a_live.empty()) continue;
      std::uint64_t h = 0xcbf29ce484222325ull ^ a_live.size();
      const double first = a_live.front().second->to_double();
      for (const auto& [idx, coeff] : a_live) {
        h ^= idx + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        const double ratio = coeff->to_double() / first;
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(ratio));
        __builtin_memcpy(&bits, &ratio, sizeof(bits));
        h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      }
      buckets[h].push_back(i);
    }
    for (auto& [hash, rows] : buckets) {
      (void)hash;
      if (rows.size() < 2) continue;
      // Exact-proportionality subgroups within the bucket.
      std::vector<std::vector<std::size_t>> groups;
      std::vector<Rational> factors;  // factor of each row vs its group rep
      std::vector<std::vector<Rational>> group_factors;
      for (std::size_t row : rows) {
        live_of(row, b_live);
        bool placed = false;
        for (std::size_t g = 0; g < groups.size() && !placed; ++g) {
          live_of(groups[g].front(), a_live);
          if (a_live.size() != b_live.size()) continue;
          bool same_vars = true;
          for (std::size_t k = 0; k < a_live.size(); ++k) {
            if (a_live[k].first != b_live[k].first) {
              same_vars = false;
              break;
            }
          }
          if (!same_vars) continue;
          const Rational factor =
              *b_live.front().second / *a_live.front().second;
          bool proportional = true;
          for (std::size_t k = 1; k < a_live.size(); ++k) {
            if (*b_live[k].second != factor * *a_live[k].second) {
              proportional = false;
              break;
            }
          }
          if (proportional) {
            groups[g].push_back(row);
            group_factors[g].push_back(factor);
            placed = true;
          }
        }
        if (!placed) {
          groups.push_back({row});
          group_factors.push_back({Rational(1)});
        }
      }
      for (std::size_t g = 0; g < groups.size() && !infeasible; ++g) {
        if (groups[g].size() < 2) continue;
        // Every row in the group constrains t = (rep row LHS): normalize
        // each to `t <sense'> beta`, the sense flipping with a negative
        // proportionality factor.
        struct Bound {
          std::size_t row;
          Sense sense;
          Rational beta;
        };
        std::vector<Bound> bounds;
        bounds.reserve(groups[g].size());
        for (std::size_t k = 0; k < groups[g].size(); ++k) {
          const std::size_t row = groups[g][k];
          const Rational& f = group_factors[g][k];
          Sense s = em.rows[row].sense;
          if (f.is_negative() && s != Sense::kEqual) {
            s = s == Sense::kLessEqual ? Sense::kGreaterEqual
                                       : Sense::kLessEqual;
          }
          bounds.push_back({row, s, rhs[row] / f});
        }
        std::size_t keep_eq = kNone;
        std::size_t keep_le = kNone;
        std::size_t keep_ge = kNone;
        for (std::size_t k = 0; k < bounds.size(); ++k) {
          const Bound& b = bounds[k];
          if (b.sense == Sense::kEqual) {
            if (keep_eq == kNone) {
              keep_eq = k;
            } else if (bounds[keep_eq].beta != b.beta) {
              infeasible = true;
              break;
            }
          } else if (b.sense == Sense::kLessEqual) {
            if (keep_le == kNone || b.beta < bounds[keep_le].beta) keep_le = k;
          } else {
            if (keep_ge == kNone || b.beta > bounds[keep_ge].beta) keep_ge = k;
          }
        }
        if (infeasible) break;
        if (keep_eq != kNone) {
          if ((keep_le != kNone &&
               bounds[keep_eq].beta > bounds[keep_le].beta) ||
              (keep_ge != kNone &&
               bounds[keep_ge].beta > bounds[keep_eq].beta)) {
            infeasible = true;
            break;
          }
          keep_le = kNone;
          keep_ge = kNone;
        } else if (keep_le != kNone && keep_ge != kNone &&
                   bounds[keep_ge].beta > bounds[keep_le].beta) {
          infeasible = true;
          break;
        }
        for (std::size_t k = 0; k < bounds.size(); ++k) {
          if (k == keep_eq || k == keep_le || k == keep_ge) continue;
          drop_redundant(bounds[k].row);
        }
      }
      if (infeasible) break;
    }
  }

  if (infeasible) {
    out.status = PresolveStatus::kInfeasible;
    return out;
  }

  // Columns no live row mentions: a nonpositive objective coefficient pins
  // them at zero; a positive one is an unbounded ray the solver must get
  // to see, so such a column survives (empty) into the reduced model.
  {
    std::vector<char> occurs(n, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!row_alive[i]) continue;
      for (const auto& [idx, coeff] : em.rows[i].coeffs) {
        (void)coeff;
        if (!var_fixed[idx]) occurs[idx] = 1;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (var_fixed[v] || occurs[v]) continue;
      if (em.objective[v].signum() <= 0) {
        const std::size_t fi = record_fixed(v, Rational(0));
        out.actions_.push_back(
            {Presolved::Action::Kind::kFixFree, kNone, {fi}});
        var_fixed[v] = 1;
      }
    }
  }

  // Identity early-out: nothing fired, so spare the full rational copy of
  // the model — callers solve the original directly.
  if (out.actions_.empty() && out.fixed_.empty()) {
    return out;
  }

  // Assemble the reduced model and the maps.
  std::vector<std::size_t> var_to_reduced(n, kNone);
  for (std::size_t v = 0; v < n; ++v) {
    if (var_fixed[v]) continue;
    var_to_reduced[v] = out.var_map_.size();
    out.var_map_.push_back(v);
  }
  out.reduced.num_vars = out.var_map_.size();
  out.reduced.shift.assign(out.reduced.num_vars, Rational(0));
  out.reduced.objective.reserve(out.reduced.num_vars);
  for (std::size_t v : out.var_map_) {
    out.reduced.objective.push_back(em.objective[v]);
  }
  out.reduced.objective_constant = em.objective_constant;
  for (const auto& fv : out.fixed_) {
    if (!fv.value.is_zero()) {
      out.reduced.objective_constant.add_product(fv.objective, fv.value);
    }
  }
  out.reduced.num_model_rows = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (!row_alive[i]) continue;
    out.row_map_.push_back(i);
    if (i < em.num_model_rows) ++out.reduced.num_model_rows;
    ExpandedModel::Row row;
    row.sense = em.rows[i].sense;
    row.rhs = rhs[i];
    row.coeffs.reserve(live_count[i]);
    for (const auto& [idx, coeff] : em.rows[i].coeffs) {
      if (!var_fixed[idx]) row.coeffs.emplace_back(var_to_reduced[idx], coeff);
    }
    out.reduced.rows.push_back(std::move(row));
  }

  out.stats.rows_removed = m - out.row_map_.size();
  out.stats.cols_removed = n - out.var_map_.size();
  return out;
}

Presolved::Lifted Presolved::postsolve(
    const std::vector<Rational>& primal, const std::vector<Rational>& dual,
    const std::vector<BasisColumn>& reduced_basis) const {
  Lifted out;
  out.primal.assign(orig_vars_, Rational(0));
  for (const FixedVar& fv : fixed_) out.primal[fv.var] = fv.value;
  for (std::size_t k = 0; k < var_map_.size() && k < primal.size(); ++k) {
    out.primal[var_map_[k]] = primal[k];
  }
  out.dual.assign(orig_rows_, Rational(0));
  for (std::size_t k = 0; k < row_map_.size() && k < dual.size(); ++k) {
    out.dual[row_map_[k]] = dual[k];
  }

  // Basis: surviving rows carry the reduced engine's columns (kinds
  // re-derived against the ORIGINAL row's effective sense — substitution
  // can change the RHS sign and with it which identity column a row owns).
  out.basis.assign(orig_rows_, BasisColumn{});
  for (std::size_t i = 0; i < orig_rows_; ++i) {
    out.basis[i] = identity_column(i);
  }
  for (std::size_t k = 0; k < row_map_.size() && k < reduced_basis.size();
       ++k) {
    const BasisColumn& b = reduced_basis[k];
    const std::size_t orig_row = row_map_[k];
    if (b.kind == BasisColumn::Kind::kStructural) {
      out.basis[orig_row] = {BasisColumn::Kind::kStructural,
                             var_map_[b.index]};
      continue;
    }
    const std::size_t identity_row = row_map_[b.index];
    const Sense eff = effective_sense(row_sense_[identity_row],
                                      row_flipped_[identity_row] != 0);
    if (b.kind == BasisColumn::Kind::kArtificial) {
      out.basis[orig_row] =
          eff == Sense::kLessEqual
              ? BasisColumn{BasisColumn::Kind::kSlack, identity_row}
              : BasisColumn{BasisColumn::Kind::kArtificial, identity_row};
    } else {
      out.basis[orig_row] =
          eff == Sense::kGreaterEqual
              ? BasisColumn{BasisColumn::Kind::kSurplus, identity_row}
              : BasisColumn{BasisColumn::Kind::kSlack, identity_row};
    }
  }

  // Eliminated rows, newest first: reconstruct duals so every fixed
  // column's reduced cost lands on the feasible side (exactly zero for a
  // variable fixed at a nonzero value — complementary slackness), which is
  // what makes the lifted pair pass the full-model certificate.
  for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
    const Action& a = *it;
    switch (a.kind) {
      case Action::Kind::kDropRedundantRow:
      case Action::Kind::kFixFree:
        break;  // dual stays zero; identity column already assigned
      case Action::Kind::kFixByEquality: {
        const FixedVar& fv = fixed_[a.fixed.front()];
        Rational num = fv.objective;
        const Rational* diag = nullptr;
        for (const auto& [row, coeff] : fv.column) {
          if (row == a.row) {
            diag = &coeff;
          } else if (!out.dual[row].is_zero()) {
            num.sub_product(out.dual[row], coeff);
          }
        }
        out.dual[a.row] = num / *diag;
        out.basis[a.row] = {BasisColumn::Kind::kStructural, fv.var};
        break;
      }
      case Action::Kind::kDropForcingRow: {
        // One free dual must cover every column the row fixed:
        // y * a_rj >= r_j for all j, where r_j is the residual reduced
        // cost. All a_rj share one sign, so the binding ratio is a max
        // (positive coefficients) or min (negative); inequality rows
        // additionally clamp the dual to their feasible sign, falling back
        // to the row's own identity column when the clamp wins.
        bool first = true;
        bool want_max = true;
        Rational best;
        std::size_t best_var = kNone;
        for (std::size_t fi : a.fixed) {
          const FixedVar& fv = fixed_[fi];
          Rational num = fv.objective;
          const Rational* diag = nullptr;
          for (const auto& [row, coeff] : fv.column) {
            if (row == a.row) {
              diag = &coeff;
            } else if (!out.dual[row].is_zero()) {
              num.sub_product(out.dual[row], coeff);
            }
          }
          const Rational ratio = num / *diag;
          if (first) {
            want_max = diag->signum() > 0;
            best = ratio;
            best_var = fv.var;
            first = false;
          } else if (want_max ? best < ratio : ratio < best) {
            best = ratio;
            best_var = fv.var;
          }
        }
        bool clamped = false;
        if (row_sense_[a.row] == Sense::kLessEqual && best.is_negative()) {
          clamped = true;  // y >= 0 required; 0 already covers every column
        }
        if (row_sense_[a.row] == Sense::kGreaterEqual && best.signum() > 0) {
          clamped = true;  // y <= 0 required
        }
        if (!clamped) {
          out.dual[a.row] = best;
          out.basis[a.row] = {BasisColumn::Kind::kStructural, best_var};
        }
        // else: dual stays zero, identity column already assigned.
        break;
      }
    }
  }
  return out;
}

}  // namespace ssco::lp
