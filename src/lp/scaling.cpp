#include "lp/scaling.h"

#include <cmath>
#include <limits>

namespace ssco::lp {

namespace {

/// Nearest power of two to `v` (v > 0), exact in double arithmetic.
double pow2_round(double v) {
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
  // mantissa in [0.5, 1): round to 0.5 (exp - 1) or 1.0 (exp) by the
  // geometric midpoint 1/sqrt(2) ~ 0.7071.
  return std::ldexp(1.0, mantissa < 0.70710678118654752 ? exp - 1 : exp);
}

}  // namespace

double column_equilibration_factor(
    const std::vector<std::pair<std::size_t, Rational>>& entries,
    const std::vector<double>& row_scale) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& [row, coeff] : entries) {
    const double a = std::fabs(coeff.to_double()) * row_scale[row];
    if (a == 0.0 || !std::isfinite(a)) continue;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  if (hi == 0.0) return 1.0;
  return pow2_round(1.0 / std::sqrt(lo * hi));
}

Equilibration Equilibration::geometric_mean(const ExpandedModel& em,
                                            int rounds) {
  const std::size_t m = em.rows.size();
  const std::size_t n = em.num_vars;
  Equilibration eq;
  eq.row_scale.assign(m, 1.0);
  eq.col_scale.assign(n, 1.0);

  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> lo, hi;
  for (int round = 0; round < rounds; ++round) {
    // Row sweep: r_i <- r_i / sqrt(min * max) of the current scaled row.
    lo.assign(m, inf);
    hi.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (const auto& [idx, coeff] : em.rows[i].coeffs) {
        const double a =
            std::fabs(coeff.to_double()) * eq.row_scale[i] * eq.col_scale[idx];
        if (a == 0.0 || !std::isfinite(a)) continue;
        lo[i] = std::min(lo[i], a);
        hi[i] = std::max(hi[i], a);
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (hi[i] > 0.0) {
        eq.row_scale[i] = pow2_round(eq.row_scale[i] / std::sqrt(lo[i] * hi[i]));
      }
    }
    // Column sweep over the row-major storage.
    lo.assign(n, inf);
    hi.assign(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (const auto& [idx, coeff] : em.rows[i].coeffs) {
        const double a =
            std::fabs(coeff.to_double()) * eq.row_scale[i] * eq.col_scale[idx];
        if (a == 0.0 || !std::isfinite(a)) continue;
        lo[idx] = std::min(lo[idx], a);
        hi[idx] = std::max(hi[idx], a);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (hi[j] > 0.0) {
        eq.col_scale[j] =
            pow2_round(eq.col_scale[j] / std::sqrt(lo[j] * hi[j]));
      }
    }
  }

  eq.identity = true;
  for (double r : eq.row_scale) {
    if (r != 1.0) {
      eq.identity = false;
      break;
    }
  }
  if (eq.identity) {
    for (double c : eq.col_scale) {
      if (c != 1.0) {
        eq.identity = false;
        break;
      }
    }
  }
  return eq;
}

}  // namespace ssco::lp
