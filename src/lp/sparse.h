#pragma once
// Compressed-sparse-column (CSC) matrix over doubles.
//
// Storage backbone of the revised simplex (lp/revised_simplex.h) and of the
// LU-factorized basis (lp/basis_lu.h): the constraint matrix is built
// column by column and read through per-column entry spans (sparse dot
// products against dense vectors, dense scatters of single columns).
// Because the storage is strictly column-major, add_column also serves the
// column-generation path mid-solve: appending a column leaves every
// existing column's data and index untouched (entry spans are fetched per
// use and must not be held across an append — the backing vector may
// reallocate), and a BasisLu factored from a subset of columns owns its
// factors, so it survives appends unchanged. Row-major mirrors — the
// engine's CSR copy — cannot be appended in place and are rebuilt instead.
// Rows within a column are unordered; duplicate rows are not allowed;
// exact zeros may be stored and are treated like any other entry.

#include <cstddef>
#include <vector>

namespace ssco::lp {

class CscMatrix {
 public:
  struct Entry {
    std::size_t row = 0;
    double value = 0.0;
  };

  CscMatrix() = default;
  explicit CscMatrix(std::size_t num_rows) : num_rows_(num_rows) {}

  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  [[nodiscard]] std::size_t num_cols() const { return col_start_.size() - 1; }
  [[nodiscard]] std::size_t num_nonzeros() const { return entries_.size(); }

  void reserve(std::size_t cols, std::size_t nonzeros) {
    col_start_.reserve(cols + 1);
    entries_.reserve(nonzeros);
  }

  /// Appends one column built from (row, value) pairs; returns its index.
  std::size_t add_column(const std::vector<Entry>& entries);

  /// Grows the row space (row generation): new rows have no entries in any
  /// existing column, so every stored column — and any BasisLu factored
  /// from a selection of them — stays valid as-is.
  void add_rows(std::size_t count) { num_rows_ += count; }

  /// Incremental variant: push entries of the current column, then seal it.
  void push_entry(std::size_t row, double value) {
    entries_.push_back({row, value});
  }
  std::size_t end_column() {
    col_start_.push_back(entries_.size());
    return num_cols() - 1;
  }

  [[nodiscard]] const Entry* col_begin(std::size_t j) const {
    return entries_.data() + col_start_[j];
  }
  [[nodiscard]] const Entry* col_end(std::size_t j) const {
    return entries_.data() + col_start_[j + 1];
  }
  [[nodiscard]] std::size_t col_size(std::size_t j) const {
    return col_start_[j + 1] - col_start_[j];
  }

  /// Sparse dot product of column j with a dense vector.
  [[nodiscard]] double dot_column(std::size_t j,
                                  const std::vector<double>& x) const;

  /// Writes column j into a dense vector; `x` must be zeroed beforehand.
  void scatter_column(std::size_t j, std::vector<double>& x) const;

  /// x += scale * column j (dense accumulate).
  void add_scaled_column(std::size_t j, double scale,
                         std::vector<double>& x) const;

 private:
  std::size_t num_rows_ = 0;
  std::vector<std::size_t> col_start_{0};
  std::vector<Entry> entries_;
};

}  // namespace ssco::lp
