#pragma once
// Two-phase primal simplex, templated on the scalar type.
//
// The same algorithm runs in two arithmetic regimes with two engines:
//  * `double` — fast warm-start pass used by ExactSolver, implemented as a
//    sparse revised simplex with an LU-factorized basis (lp/revised_simplex.h);
//  * `num::Rational` — exact arithmetic on a dense tableau, used directly on
//    small instances and as the fallback when rational reconstruction of the
//    double solution fails its optimality certificate.
//
// Entering-variable selection is Dantzig's rule with an automatic switch to
// Bland's rule (guaranteed anti-cycling) after a degeneracy threshold.
//
// The solver consumes an ExpandedModel: lower bounds shifted to zero, upper
// bounds materialized as rows, every row's RHS made non-negative. Duals are
// reported in the *expanded* row space with the sign convention
//   max c'x,  <= rows: y >= 0,  >= rows: y <= 0,  == rows: y free,
// so that dual feasibility reads  A' y >= c  and weak duality  c'x <= b'y.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"
#include "num/rational.h"

namespace ssco::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

[[nodiscard]] std::string to_string(SolveStatus s);

/// Model rewritten so every variable is >= 0 and every upper bound is a row.
/// This is the canonical space in which the simplex and the exact duality
/// certificate operate.
struct ExpandedModel {
  std::size_t num_vars = 0;
  // Row-major sparse rows over shifted variables.
  struct Row {
    std::vector<std::pair<std::size_t, Rational>> coeffs;
    Sense sense = Sense::kLessEqual;
    Rational rhs;
  };
  std::vector<Row> rows;
  std::vector<Rational> objective;  // per shifted variable
  Rational objective_constant;      // from lower-bound shifts
  std::vector<Rational> shift;      // original x = shifted x' + shift

  /// First `model.num_rows()` expanded rows mirror the model rows (same
  /// order); upper-bound rows follow.
  std::size_t num_model_rows = 0;

  static ExpandedModel from(const Model& model);

  /// Column-generation append, mirroring Model::add_column: a new variable
  /// with zero lower bound, no upper bound, and coefficients in EXISTING
  /// model rows (entries indexed by model row, all < num_model_rows, in
  /// increasing row order per contract of the pricing oracle). Shift is
  /// zero, so the objective constant and every existing row's RHS are
  /// untouched; no bound row is materialized, so the row space — and any
  /// live basis over it — keeps its dimension. Returns the variable index.
  std::size_t append_column(
      const Rational& objective,
      const std::vector<std::pair<std::size_t, Rational>>& entries);

  /// Row-generation append, mirroring Model::add_constraint on an EMPTY
  /// row: a new model row with no coefficients in any existing column (the
  /// activation invariant of lp/colgen.h row generation). Only valid while
  /// the expansion materialized no bound rows — model rows must stay a
  /// prefix — which holds for the colgen masters (generated columns carry
  /// no upper bounds); throws std::logic_error otherwise. Returns the new
  /// row index (== old num_model_rows).
  std::size_t append_row(Sense sense, const Rational& rhs);

  /// Maps a shifted-space point back to original variable space.
  [[nodiscard]] std::vector<Rational> unshift(
      const std::vector<Rational>& x_shifted) const;
};

/// Identity of one basic column of the final simplex basis, in terms of the
/// expanded model (used by ExactSolver's basis-verification path).
struct BasisColumn {
  enum class Kind { kStructural, kSlack, kSurplus, kArtificial };
  Kind kind = Kind::kStructural;
  /// Variable index for kStructural; expanded-row index otherwise.
  std::size_t index = 0;
};

/// Wall-clock breakdown of one float solve, accumulated by the revised
/// engine (the exact tableau leaves it zero). `pricing_ns` covers entering
/// selection plus the pivot-row pass that maintains reduced costs and Devex
/// weights; `factor_ns` is LU (re)factorization. The last two buckets are
/// filled by ExactSolver, not the engines: `certify_ns` is the exact
/// certificate ladder (rational reconstruction + basis verification) and
/// `pricing_sweep_ns` the column-generation pricing sweeps (float rounds
/// plus the final exact sweep) — the two column loops the parallel solve
/// fabric (lp/parallel.h) shards across threads.
struct SolvePhaseTimes {
  std::uint64_t ftran_ns = 0;
  std::uint64_t btran_ns = 0;
  std::uint64_t pricing_ns = 0;
  std::uint64_t factor_ns = 0;
  std::uint64_t certify_ns = 0;
  std::uint64_t pricing_sweep_ns = 0;
  /// Peak LU factor fill — nonzeros in L + U + diagonal — over every
  /// refactorization the solve performed. A size, not a time: it tracks how
  /// much fill the Gilbert–Peierls factorization admits on this model class
  /// (BENCH_lp.json gates it like the pivot counters), so it merges by max,
  /// not sum.
  std::size_t factor_fill = 0;

  SolvePhaseTimes& operator+=(const SolvePhaseTimes& o) {
    ftran_ns += o.ftran_ns;
    btran_ns += o.btran_ns;
    pricing_ns += o.pricing_ns;
    factor_ns += o.factor_ns;
    certify_ns += o.certify_ns;
    pricing_sweep_ns += o.pricing_sweep_ns;
    if (o.factor_fill > factor_fill) factor_fill = o.factor_fill;
    return *this;
  }
};

template <typename T>
struct SimplexResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  T objective{};              // in shifted space, EXCLUDING objective_constant
  std::vector<T> primal;      // shifted variables
  std::vector<T> dual;        // one per expanded row, original sign convention
  /// Final basis, one column per expanded row (valid when optimal).
  std::vector<BasisColumn> basis;
  std::size_t iterations = 0;
  /// FTRAN/BTRAN/pricing/factorization time split (double engine only).
  SolvePhaseTimes phase_times;
};

/// Entering-variable selection policy of the double engine's primal loop
/// (the dual loop mirrors it for the leaving-row choice). Both policies
/// still fall back to Bland's rule after `bland_after` consecutive
/// degenerate pivots — the anti-cycling guarantee is not a policy.
///
/// Measured guidance (DESIGN.md "Presolve & pricing"): the steady-state
/// LPs here are so degenerate that every rule pays roughly the same
/// basis-building pivot floor, so the cheap rotating scan wins end to end
/// and is the default; Devex carries full reference-framework machinery
/// (updated reduced costs, weight maintenance from the pivot row) for
/// model classes where pricing quality, not degeneracy, limits the pivot
/// count.
enum class PricingRule {
  /// Rotating partial Dantzig over exact reduced costs: cheapest
  /// per-iteration scan, and the measured default for the flow LPs.
  kDantzig,
  /// Devex reference-framework pricing (Harris) with incrementally updated
  /// reduced costs: steepest-edge-like entering choices at one extra BTRAN
  /// plus one pivot-row pass per iteration.
  kDevex,
};

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  /// Switch from the configured pricing rule to Bland's rule (guaranteed
  /// anti-cycling) after this many CONSECUTIVE degenerate pivots; any
  /// progress switches back. Cycling consists solely of degenerate pivots,
  /// so the guarantee is preserved without condemning large instances to
  /// Bland's crawl.
  std::size_t bland_after = 1000;
  PricingRule pricing = PricingRule::kDantzig;
  /// Apply power-of-two geometric-mean equilibration (lp/scaling.h) inside
  /// the double engine. Exactly undone on extraction; the rational tableau
  /// never scales.
  bool equilibrate = true;
};

/// Runs two-phase simplex on the expanded model using scalar type T.
/// T must be `double` or `num::Rational`.
///
/// The two scalar types select two different engines behind the same
/// contract: `double` runs the sparse revised simplex (LU-factorized basis,
/// lp/revised_simplex.h); `num::Rational` runs the dense exact tableau.
template <typename T>
SimplexResult<T> solve_simplex(const ExpandedModel& em,
                               const SimplexOptions& options = {});

template <>
SimplexResult<double> solve_simplex<double>(const ExpandedModel& em,
                                            const SimplexOptions& options);
extern template SimplexResult<num::Rational> solve_simplex<num::Rational>(
    const ExpandedModel&, const SimplexOptions&);

}  // namespace ssco::lp
