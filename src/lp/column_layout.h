#pragma once
// Simplex column layout of the expanded model, shared by both engines.
//
// The dense exact tableau (lp/simplex.cpp) and the sparse revised engine
// (lp/revised_simplex.cpp) must agree byte-for-byte on how columns map to
// structural variables, slacks/surpluses, and artificials: ExactSolver's
// certificate paths decode the final BasisColumn list against this mapping,
// so a divergence would silently break basis verification. Keeping the
// layout in one place makes divergence impossible.
//
// Layout: [0, num_vars) structural; then one slack/surplus per inequality
// row; then one artificial per >=/== row — both groups in row order, against
// the EFFECTIVE senses (after rows with negative RHS are flipped).
//
// Column generation appends structural columns AFTER the artificial block
// (append_structural): the identity columns keep their indices, so a live
// basis — and every eta built on it — survives the append untouched. The
// expanded-model identity of an appended column is carried explicitly in
// column_identity, which is what the certificate and warm-start paths
// decode; only the artificial range test needs the explicit [art_start_col,
// art_end_col) bounds instead of "everything past art_start_col".

#include <cstddef>
#include <vector>

#include "lp/simplex.h"

namespace ssco::lp {

struct ColumnLayout {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t num_vars = 0;
  std::size_t num_cols = 0;
  std::size_t art_start_col = 0;
  /// One past the artificial block; columns in [art_end_col, num_cols) are
  /// structurals appended by column generation.
  std::size_t art_end_col = 0;
  /// True when row i was negated to make its RHS non-negative.
  std::vector<bool> flipped;
  /// Sense of each row AFTER flipping.
  std::vector<Sense> sense;
  std::vector<std::size_t> slack_col;  // kNone for == rows
  std::vector<std::size_t> art_col;    // kNone for <= rows
  /// Expanded-model identity of every column, indexed by column.
  std::vector<BasisColumn> column_identity;

  [[nodiscard]] static ColumnLayout from(const ExpandedModel& em);

  /// Identity columns appended for generated rows (kSlack / kSurplus /
  /// kArtificial kinds past art_end_col); kArtificial entries among them
  /// are counted here so the artificial tests stay O(1).
  std::size_t appended_artificials = 0;

  /// Registers a structural column for expanded variable `var` appended
  /// after the identity blocks; returns its column index.
  std::size_t append_structural(std::size_t var) {
    column_identity.push_back({BasisColumn::Kind::kStructural, var});
    return num_cols++;
  }

  /// Registers expanded row `row` appended by row generation (its effective
  /// sense and flip already decided by the caller) and its identity
  /// column(s), appended after everything else: a slack/surplus for
  /// inequality rows, an artificial for ==/>= rows. Returns the column the
  /// engine makes basic for the new row — the slack for <= rows, the
  /// artificial otherwise.
  std::size_t append_row(std::size_t row, Sense effective_sense, bool flip) {
    flipped.push_back(flip);
    sense.push_back(effective_sense);
    slack_col.push_back(kNone);
    art_col.push_back(kNone);
    std::size_t basic = kNone;
    if (effective_sense != Sense::kEqual) {
      slack_col[row] = num_cols++;
      column_identity.push_back(
          {effective_sense == Sense::kLessEqual ? BasisColumn::Kind::kSlack
                                                : BasisColumn::Kind::kSurplus,
           row});
      basic = slack_col[row];
    }
    if (effective_sense != Sense::kLessEqual) {
      art_col[row] = num_cols++;
      column_identity.push_back({BasisColumn::Kind::kArtificial, row});
      ++appended_artificials;
      basic = art_col[row];
    }
    return basic;
  }

  [[nodiscard]] bool is_artificial(std::size_t col) const {
    return column_identity[col].kind == BasisColumn::Kind::kArtificial;
  }
  [[nodiscard]] bool has_artificials() const {
    return art_start_col < art_end_col || appended_artificials > 0;
  }
};

}  // namespace ssco::lp
