#pragma once
// Simplex column layout of the expanded model, shared by both engines.
//
// The dense exact tableau (lp/simplex.cpp) and the sparse revised engine
// (lp/revised_simplex.cpp) must agree byte-for-byte on how columns map to
// structural variables, slacks/surpluses, and artificials: ExactSolver's
// certificate paths decode the final BasisColumn list against this mapping,
// so a divergence would silently break basis verification. Keeping the
// layout in one place makes divergence impossible.
//
// Layout: [0, num_vars) structural; then one slack/surplus per inequality
// row; then one artificial per >=/== row — both groups in row order, against
// the EFFECTIVE senses (after rows with negative RHS are flipped).
//
// Column generation appends structural columns AFTER the artificial block
// (append_structural): the identity columns keep their indices, so a live
// basis — and every eta built on it — survives the append untouched. The
// expanded-model identity of an appended column is carried explicitly in
// column_identity, which is what the certificate and warm-start paths
// decode; only the artificial range test needs the explicit [art_start_col,
// art_end_col) bounds instead of "everything past art_start_col".

#include <cstddef>
#include <vector>

#include "lp/simplex.h"

namespace ssco::lp {

struct ColumnLayout {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t num_vars = 0;
  std::size_t num_cols = 0;
  std::size_t art_start_col = 0;
  /// One past the artificial block; columns in [art_end_col, num_cols) are
  /// structurals appended by column generation.
  std::size_t art_end_col = 0;
  /// True when row i was negated to make its RHS non-negative.
  std::vector<bool> flipped;
  /// Sense of each row AFTER flipping.
  std::vector<Sense> sense;
  std::vector<std::size_t> slack_col;  // kNone for == rows
  std::vector<std::size_t> art_col;    // kNone for <= rows
  /// Expanded-model identity of every column, indexed by column.
  std::vector<BasisColumn> column_identity;

  [[nodiscard]] static ColumnLayout from(const ExpandedModel& em);

  /// Registers a structural column for expanded variable `var` appended
  /// after the identity blocks; returns its column index.
  std::size_t append_structural(std::size_t var) {
    column_identity.push_back({BasisColumn::Kind::kStructural, var});
    return num_cols++;
  }

  [[nodiscard]] bool is_artificial(std::size_t col) const {
    return col >= art_start_col && col < art_end_col;
  }
  [[nodiscard]] bool has_artificials() const {
    return art_start_col < art_end_col;
  }
};

}  // namespace ssco::lp
