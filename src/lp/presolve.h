#pragma once
// Exact presolve / postsolve for the expanded model.
//
// The steady-state LPs carry a long tail of structure a simplex engine pays
// for on every pivot: conservation rows whose variables are all forced to
// zero (dead-end subgraphs of one commodity), rows that become empty or
// singleton once those variables leave, duplicate/proportional rows from
// symmetric platform regions, and columns no surviving row mentions.
// Presolve removes them BEFORE the float solve — in exact rational
// arithmetic, so every verdict (including infeasibility) is a proof, not a
// tolerance call.
//
// Reductions, iterated to a fixpoint then closed with a duplicate pass:
//   * empty row        -> feasibility check, drop (dual 0, identity column)
//   * singleton row    -> == fixes the variable (its structural column later
//                         carries the row in the postsolved basis; the row's
//                         dual is reconstructed so the column prices to
//                         exactly zero); redundant one-sided bounds drop
//   * forcing row      -> rhs at the row's attainable extreme fixes every
//                         variable in it at zero
//   * empty column     -> fixed at zero when its objective coefficient is
//                         <= 0 (a positive one is a certified unbounded ray,
//                         which is left for the solver to report)
//   * duplicate rows   -> exact proportionality groups keep only the
//                         tightest row per direction; conflicts are proofs
//                         of infeasibility
//
// postsolve() lifts an exact reduced-model (primal, dual, basis) triple
// back to the full model, reconstructing the duals of eliminated rows so
// that complementary slackness — and therefore ExactSolver's certificate —
// holds on the full model whenever it held on the reduced one. The lifted
// basis has one column per original row (eliminated rows get their own
// slack/artificial, or the structural column of the variable they fixed),
// so warm starts captured from a presolved solve map exactly like cold
// ones. ExactSolver re-verifies the lifted pair against the FULL model, so
// a presolve defect can cost a fallback, never a wrong answer.

#include <cstddef>
#include <vector>

#include "lp/simplex.h"

namespace ssco::lp {

enum class PresolveStatus {
  kReduced,     // `reduced` is ready to solve (possibly untouched)
  kInfeasible,  // exact proof of primal infeasibility found
};

struct PresolveStats {
  std::size_t rows_removed = 0;
  /// Variables eliminated (fixed by rows, forced to zero, or dead columns).
  std::size_t cols_removed = 0;
};

class Presolved {
 public:
  PresolveStatus status = PresolveStatus::kReduced;
  ExpandedModel reduced;
  PresolveStats stats;

  /// True when no reduction fired — callers can skip postsolve entirely.
  [[nodiscard]] bool identity() const {
    return stats.rows_removed == 0 && stats.cols_removed == 0;
  }

  struct Lifted {
    std::vector<Rational> primal;      // full shifted space
    std::vector<Rational> dual;        // one per original expanded row
    std::vector<BasisColumn> basis;    // one column per original row
  };

  /// Lifts an exact optimal (primal, dual, basis) triple of `reduced` back
  /// to the original expanded model (see file comment). `reduced_basis`
  /// must have one entry per reduced row (engine position order).
  [[nodiscard]] Lifted postsolve(
      const std::vector<Rational>& primal, const std::vector<Rational>& dual,
      const std::vector<BasisColumn>& reduced_basis) const;

 private:
  friend Presolved presolve(const ExpandedModel& em);

  struct FixedVar {
    std::size_t var = 0;   // original index
    Rational value;        // exact fixed value (>= 0)
    Rational objective;    // original objective coefficient
    /// Original column: every original row mentioning the variable.
    std::vector<std::pair<std::size_t, Rational>> column;
  };

  struct Action {
    enum class Kind {
      kDropRedundantRow,  // y = 0, own identity column
      kFixFree,           // empty column fixed at 0, no row involved
      kFixByEquality,     // singleton == row fixed `fixed[0]`
      kDropForcingRow,    // row at its attainable extreme fixed `fixed`
    };
    Kind kind = Kind::kDropRedundantRow;
    std::size_t row = static_cast<std::size_t>(-1);  // original row index
    std::vector<std::size_t> fixed;  // indices into fixed_
  };

  [[nodiscard]] BasisColumn identity_column(std::size_t row) const;

  std::size_t orig_rows_ = 0;
  std::size_t orig_vars_ = 0;
  std::vector<std::size_t> var_map_;  // reduced var -> original var
  std::vector<std::size_t> row_map_;  // reduced row -> original row
  std::vector<Sense> row_sense_;      // original senses
  std::vector<char> row_flipped_;     // original rhs sign (effective sense)
  std::vector<FixedVar> fixed_;
  std::vector<Action> actions_;       // chronological; postsolve walks back
};

/// Runs the reduction pipeline on `em`. The returned object keeps no
/// reference to `em`.
[[nodiscard]] Presolved presolve(const ExpandedModel& em);

}  // namespace ssco::lp
