#include "lp/exact_solver.h"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "lp/column_layout.h"
#include "lp/dual_simplex.h"
#include "lp/exact_basis.h"
#include "lp/presolve.h"
#include "num/reconstruct.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ssco::lp {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

/// Shard granularity of the certification loops: each item is big-int
/// rational work, so fairly fine shards still amortize the fork.
constexpr std::size_t kMinCertifyPerShard = 16;

/// Rounds every entry of `values` to a rational with denominator <= cap;
/// returns nullopt when any entry fails the tolerance test. Entries are
/// independent, so the sharded fill is bit-identical to the serial scan.
std::optional<std::vector<Rational>> reconstruct_vector(
    const std::vector<double>& values, std::uint64_t cap, double tolerance,
    const Parallel& par = {}) {
  std::vector<Rational> out(values.size());
  const std::size_t shards = par.shard_count(values.size(), kMinCertifyPerShard);
  std::vector<ShardLocal<bool>> ok(shards);
  par.for_shards(values.size(), kMinCertifyPerShard,
                 [&](std::size_t shard, std::size_t begin, std::size_t end) {
                   bool all = true;
                   for (std::size_t i = begin; i < end && all; ++i) {
                     auto r = num::rational_near_double(values[i], tolerance, cap);
                     if (r) {
                       out[i] = std::move(*r);
                     } else {
                       all = false;
                     }
                   }
                   ok[shard].value = all;
                 });
  for (const auto& flag : ok) {
    if (!flag.value) return std::nullopt;
  }
  return out;
}

/// Recovers the EXACT primal/dual pair from the double solver's final basis:
/// solve B x_B = b and B' y = c_B exactly (lp/exact_basis.h) and verify the
/// certificate. Handles the degenerate optima whose vertex coordinates have
/// denominators far beyond what float reconstruction can recover.
struct BasisVerified {
  std::vector<Rational> primal;  // shifted space
  std::vector<Rational> dual;
};

std::optional<BasisVerified> verify_from_basis(
    const ExpandedModel& em, const std::vector<BasisColumn>& basis,
    const Parallel& par = {}) {
  const std::size_t m = em.rows.size();
  if (basis.size() != m) return std::nullopt;

  // Column entries per structural variable, from the row-major model.
  std::vector<std::vector<std::pair<std::size_t, Rational>>> var_entries(
      em.num_vars);
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& [idx, coeff] : em.rows[i].coeffs) {
      var_entries[idx].emplace_back(i, coeff);
    }
  }
  auto flipped = [&em](std::size_t i) {
    return em.rows[i].rhs.is_negative();
  };

  SparseColumns b_matrix;
  b_matrix.n = m;
  b_matrix.cols.resize(m);
  std::vector<Rational> cost_basis(m, Rational(0));
  for (std::size_t k = 0; k < m; ++k) {
    switch (basis[k].kind) {
      case BasisColumn::Kind::kStructural:
        b_matrix.cols[k] = var_entries[basis[k].index];
        cost_basis[k] = em.objective[basis[k].index];
        break;
      case BasisColumn::Kind::kSlack:
        b_matrix.cols[k].emplace_back(
            basis[k].index, Rational(flipped(basis[k].index) ? -1 : 1));
        break;
      case BasisColumn::Kind::kSurplus:
        b_matrix.cols[k].emplace_back(
            basis[k].index, Rational(flipped(basis[k].index) ? 1 : -1));
        break;
      case BasisColumn::Kind::kArtificial:
        b_matrix.cols[k].emplace_back(
            basis[k].index, Rational(flipped(basis[k].index) ? -1 : 1));
        break;
    }
  }

  std::vector<Rational> rhs(m, Rational(0));
  for (std::size_t i = 0; i < m; ++i) rhs[i] = em.rows[i].rhs;

  // One shared LU: B x_B = b via FTRAN-refinement, B' y = c_B via BTRAN.
  auto solves = solve_sparse_exact_pair(b_matrix, rhs, cost_basis, {}, par);
  if (!solves) return std::nullopt;

  BasisVerified out;
  out.primal.assign(em.num_vars, Rational(0));
  for (std::size_t k = 0; k < m; ++k) {
    if (basis[k].kind == BasisColumn::Kind::kStructural) {
      out.primal[basis[k].index] = solves->solution[k];
    }
  }
  out.dual = std::move(solves->transposed_solution);
  if (!ExactSolver::verify_certificate(em, out.primal, out.dual, par)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace

bool ExactSolver::verify_certificate(const ExpandedModel& em,
                                     const std::vector<Rational>& x,
                                     const std::vector<Rational>& y) {
  if (x.size() != em.num_vars || y.size() != em.rows.size()) return false;

  // Primal feasibility: x >= 0 (shifted space) and every row satisfied.
  for (const Rational& xj : x) {
    if (xj.is_negative()) return false;
  }
  for (std::size_t i = 0; i < em.rows.size(); ++i) {
    Rational lhs(0);
    for (const auto& [idx, coeff] : em.rows[i].coeffs) {
      lhs.add_product(coeff, x[idx]);
    }
    switch (em.rows[i].sense) {
      case Sense::kLessEqual:
        if (lhs > em.rows[i].rhs) return false;
        break;
      case Sense::kEqual:
        if (lhs != em.rows[i].rhs) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < em.rows[i].rhs) return false;
        break;
    }
  }

  // Dual sign conditions: <= rows need y >= 0, >= rows need y <= 0.
  for (std::size_t i = 0; i < em.rows.size(); ++i) {
    if (em.rows[i].sense == Sense::kLessEqual && y[i].is_negative())
      return false;
    if (em.rows[i].sense == Sense::kGreaterEqual && y[i].signum() > 0)
      return false;
  }

  // Dual feasibility: for every variable j, sum_i y_i a_ij >= c_j
  // (variables are >= 0 in expanded space).
  std::vector<Rational> aty(em.num_vars, Rational(0));
  for (std::size_t i = 0; i < em.rows.size(); ++i) {
    if (y[i].is_zero()) continue;
    for (const auto& [idx, coeff] : em.rows[i].coeffs) {
      aty[idx].add_product(y[i], coeff);
    }
  }
  for (std::size_t j = 0; j < em.num_vars; ++j) {
    if (aty[j] < em.objective[j]) return false;
  }

  // Strong duality at the candidate pair: c'x == b'y exactly.
  Rational primal_obj(0);
  for (std::size_t j = 0; j < em.num_vars; ++j) {
    if (!em.objective[j].is_zero()) primal_obj.add_product(em.objective[j], x[j]);
  }
  Rational dual_obj(0);
  for (std::size_t i = 0; i < em.rows.size(); ++i) {
    if (!y[i].is_zero()) dual_obj.add_product(y[i], em.rows[i].rhs);
  }
  return primal_obj == dual_obj;
}

bool ExactSolver::verify_certificate(const ExpandedModel& em,
                                     const std::vector<Rational>& x,
                                     const std::vector<Rational>& y,
                                     const Parallel& parallel) {
  if (parallel.is_serial()) return verify_certificate(em, x, y);
  if (x.size() != em.num_vars || y.size() != em.rows.size()) return false;
  const std::size_t m = em.rows.size();
  const Parallel& par = parallel;

  // Sign scans are cheap comparisons; keep them serial.
  for (const Rational& xj : x) {
    if (xj.is_negative()) return false;
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (em.rows[i].sense == Sense::kLessEqual && y[i].is_negative())
      return false;
    if (em.rows[i].sense == Sense::kGreaterEqual && y[i].signum() > 0)
      return false;
  }

  // Primal feasibility: every row check is independent — shard the rows.
  // The verdict is a conjunction, so evaluation order cannot change it.
  {
    const std::size_t shards = par.shard_count(m, kMinCertifyPerShard);
    std::vector<ShardLocal<bool>> ok(shards);
    par.for_shards(m, kMinCertifyPerShard,
                   [&](std::size_t shard, std::size_t begin, std::size_t end) {
                     bool all = true;
                     Rational lhs;
                     for (std::size_t i = begin; i < end && all; ++i) {
                       lhs = Rational(0);
                       for (const auto& [idx, coeff] : em.rows[i].coeffs) {
                         lhs.add_product(coeff, x[idx]);
                       }
                       switch (em.rows[i].sense) {
                         case Sense::kLessEqual:
                           all = !(lhs > em.rows[i].rhs);
                           break;
                         case Sense::kEqual:
                           all = lhs == em.rows[i].rhs;
                           break;
                         case Sense::kGreaterEqual:
                           all = !(lhs < em.rows[i].rhs);
                           break;
                       }
                     }
                     ok[shard].value = all;
                   });
    for (const auto& flag : ok) {
      if (!flag.value) return false;
    }
  }

  // Dual feasibility, A'y >= c per column: build a column view of the
  // row-major model once (index/pointer copies only), then shard the
  // per-column reduced-cost checks. Each column's dot runs in the same row
  // order as the serial scatter — and is exact anyway.
  {
    std::vector<std::vector<std::pair<std::size_t, const Rational*>>> by_var(
        em.num_vars);
    for (std::size_t i = 0; i < m; ++i) {
      if (y[i].is_zero()) continue;
      for (const auto& [idx, coeff] : em.rows[i].coeffs) {
        by_var[idx].emplace_back(i, &coeff);
      }
    }
    const std::size_t shards = par.shard_count(em.num_vars, kMinCertifyPerShard);
    std::vector<ShardLocal<bool>> ok(shards);
    par.for_shards(em.num_vars, kMinCertifyPerShard,
                   [&](std::size_t shard, std::size_t begin, std::size_t end) {
                     bool all = true;
                     Rational aty;
                     for (std::size_t j = begin; j < end && all; ++j) {
                       aty = Rational(0);
                       for (const auto& [i, coeff] : by_var[j]) {
                         aty.add_product(y[i], *coeff);
                       }
                       all = !(aty < em.objective[j]);
                     }
                     ok[shard].value = all;
                   });
    for (const auto& flag : ok) {
      if (!flag.value) return false;
    }
  }

  // Strong duality: per-shard exact partial objectives, merged shard-major
  // (exact addition is associative, so the sums are canonical).
  Rational primal_obj(0);
  Rational dual_obj(0);
  {
    const std::size_t pshards = par.shard_count(em.num_vars, kMinCertifyPerShard);
    std::vector<ShardLocal<Rational>> ppart(pshards);
    par.for_shards(em.num_vars, kMinCertifyPerShard,
                   [&](std::size_t shard, std::size_t begin, std::size_t end) {
                     Rational sum(0);
                     for (std::size_t j = begin; j < end; ++j) {
                       if (!em.objective[j].is_zero()) {
                         sum.add_product(em.objective[j], x[j]);
                       }
                     }
                     ppart[shard].value = std::move(sum);
                   });
    for (auto& part : ppart) primal_obj += part.value;

    const std::size_t dshards = par.shard_count(m, kMinCertifyPerShard);
    std::vector<ShardLocal<Rational>> dpart(dshards);
    par.for_shards(m, kMinCertifyPerShard,
                   [&](std::size_t shard, std::size_t begin, std::size_t end) {
                     Rational sum(0);
                     for (std::size_t i = begin; i < end; ++i) {
                       if (!y[i].is_zero()) {
                         sum.add_product(y[i], em.rows[i].rhs);
                       }
                     }
                     dpart[shard].value = std::move(sum);
                   });
    for (auto& part : dpart) dual_obj += part.value;
  }
  return primal_obj == dual_obj;
}

ExactSolution ExactSolver::solve(const Model& model) const {
  return solve(model, nullptr);
}

bool certify_float_result(const ExpandedModel& em,
                          const SimplexResult<double>& fp,
                          const ExactSolverOptions& options,
                          ExactSolution& out, const Parallel& parallel) {
  for (std::uint64_t cap : options.denominator_caps) {
    auto x = reconstruct_vector(fp.primal, cap, options.reconstruct_tolerance,
                                parallel);
    auto y = reconstruct_vector(fp.dual, cap, options.reconstruct_tolerance,
                                parallel);
    if (!x || !y) continue;
    // Clamp reconstruction noise: tiny negatives are infeasible exactly.
    for (Rational& v : *x) {
      if (v.is_negative()) v = Rational(0);
    }
    if (ExactSolver::verify_certificate(em, *x, *y, parallel)) {
      out.status = SolveStatus::kOptimal;
      Rational obj(0);
      for (std::size_t j = 0; j < em.num_vars; ++j) {
        if (!em.objective[j].is_zero()) obj.add_product(em.objective[j], (*x)[j]);
      }
      out.primal = em.unshift(*x);
      out.dual = std::move(*y);
      out.objective = obj + em.objective_constant;
      out.certified = true;
      out.method = "double+certificate";
      return true;
    }
  }
  // Second stage: exact recovery from the optimal basis (degenerate optima
  // with large vertex denominators land here).
  if (options.allow_basis_verification) {
    if (auto verified = verify_from_basis(em, fp.basis, parallel)) {
      out.status = SolveStatus::kOptimal;
      Rational obj(0);
      for (std::size_t j = 0; j < em.num_vars; ++j) {
        if (!em.objective[j].is_zero()) {
          obj.add_product(em.objective[j], verified->primal[j]);
        }
      }
      out.primal = em.unshift(verified->primal);
      out.dual = std::move(verified->dual);
      out.objective = obj + em.objective_constant;
      out.certified = true;
      out.method = "double+basis-verification";
      return true;
    }
  }
  return false;
}

SolverStats ExactSolver::stats() const {
  SolverStats out;
  out.solves = stats_.solves.load(std::memory_order_relaxed);
  out.warm_attempts = stats_.warm_attempts.load(std::memory_order_relaxed);
  out.warm_solves = stats_.warm_solves.load(std::memory_order_relaxed);
  out.float_pivots = stats_.float_pivots.load(std::memory_order_relaxed);
  out.exact_pivots = stats_.exact_pivots.load(std::memory_order_relaxed);
  out.exact_fallbacks =
      stats_.exact_fallbacks.load(std::memory_order_relaxed);
  out.presolve_rows_removed =
      stats_.presolve_rows_removed.load(std::memory_order_relaxed);
  out.presolve_cols_removed =
      stats_.presolve_cols_removed.load(std::memory_order_relaxed);
  out.ftran_ns = stats_.ftran_ns.load(std::memory_order_relaxed);
  out.btran_ns = stats_.btran_ns.load(std::memory_order_relaxed);
  out.pricing_ns = stats_.pricing_ns.load(std::memory_order_relaxed);
  out.factor_ns = stats_.factor_ns.load(std::memory_order_relaxed);
  out.certify_ns = stats_.certify_ns.load(std::memory_order_relaxed);
  out.pricing_sweep_ns =
      stats_.pricing_sweep_ns.load(std::memory_order_relaxed);
  out.colgen_solves = stats_.colgen_solves.load(std::memory_order_relaxed);
  out.colgen_rounds = stats_.colgen_rounds.load(std::memory_order_relaxed);
  out.colgen_columns_generated =
      stats_.colgen_columns_generated.load(std::memory_order_relaxed);
  return out;
}

ExactSolution ExactSolver::solve(const Model& model,
                                 SolveContext* context) const {
  ExactSolution out = solve_impl(model, context);
  record_solve(out, context);
  return out;
}

Parallel ExactSolver::solve_parallel(const SolveContext* context) const {
  const std::size_t requested =
      context && context->threads != 0 ? context->threads : options_.threads;
  const std::size_t budget = resolve_threads(requested);
  if (budget <= 1) return Parallel::serial();
  ThreadPool& pool = options_.pool ? *options_.pool : ThreadPool::shared();
  return Parallel::with(pool, budget);
}

namespace {

/// Mirrors one finished solve into the process-wide registry: counters the
/// Prometheus/JSON expositions serve, plus per-phase latency histograms
/// (the registry-backed replacement for eyeballing SolvePhaseTimes). All
/// bumps share one Batch so a concurrent snapshot sees the whole solve or
/// none of it.
void publish_solve(const ExactSolution& out) {
  obs::Registry& reg = obs::Registry::global();
  obs::Registry::Batch batch(reg);
  reg.counter("solver_solves", "completed exact solves").add(1);
  reg.counter("solver_float_pivots").add(out.float_iterations);
  reg.counter("solver_exact_pivots").add(out.exact_iterations);
  if (out.warm_started) reg.counter("solver_warm_solves").add(1);
  if (out.exact_iterations > 0) reg.counter("solver_exact_fallbacks").add(1);
  reg.counter("solver_ftran_ns").add(out.phase_times.ftran_ns);
  reg.counter("solver_btran_ns").add(out.phase_times.btran_ns);
  reg.counter("solver_pricing_ns").add(out.phase_times.pricing_ns);
  reg.counter("solver_factor_ns").add(out.phase_times.factor_ns);
  reg.counter("solver_certify_ns").add(out.phase_times.certify_ns);
  reg.counter("solver_pricing_sweep_ns").add(out.phase_times.pricing_sweep_ns);
  reg.histogram("solver_certify_ms", "per-solve certification latency")
      .record(static_cast<double>(out.phase_times.certify_ns) / 1e6);
  reg.histogram("solver_factor_ms", "per-solve factorization latency")
      .record(static_cast<double>(out.phase_times.factor_ns) / 1e6);
  reg.histogram("solver_pricing_ms", "per-solve pricing latency")
      .record(static_cast<double>(out.phase_times.pricing_ns) / 1e6);
}

}  // namespace

void ExactSolver::record_solve(const ExactSolution& out,
                               const SolveContext* context) const {
  // Aggregate telemetry: relaxed atomics, safe under concurrent solves (see
  // the thread-safety contract in the header).
  stats_.solves.fetch_add(1, std::memory_order_relaxed);
  stats_.float_pivots.fetch_add(out.float_iterations,
                                std::memory_order_relaxed);
  stats_.exact_pivots.fetch_add(out.exact_iterations,
                                std::memory_order_relaxed);
  if (context && context->warm_attempted) {
    stats_.warm_attempts.fetch_add(1, std::memory_order_relaxed);
  }
  if (out.warm_started) {
    stats_.warm_solves.fetch_add(1, std::memory_order_relaxed);
  }
  if (out.exact_iterations > 0) {
    stats_.exact_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.presolve_rows_removed.fetch_add(out.presolve_rows_removed,
                                         std::memory_order_relaxed);
  stats_.presolve_cols_removed.fetch_add(out.presolve_cols_removed,
                                         std::memory_order_relaxed);
  stats_.ftran_ns.fetch_add(out.phase_times.ftran_ns,
                            std::memory_order_relaxed);
  stats_.btran_ns.fetch_add(out.phase_times.btran_ns,
                            std::memory_order_relaxed);
  stats_.pricing_ns.fetch_add(out.phase_times.pricing_ns,
                              std::memory_order_relaxed);
  stats_.factor_ns.fetch_add(out.phase_times.factor_ns,
                             std::memory_order_relaxed);
  stats_.certify_ns.fetch_add(out.phase_times.certify_ns,
                              std::memory_order_relaxed);
  stats_.pricing_sweep_ns.fetch_add(out.phase_times.pricing_sweep_ns,
                                    std::memory_order_relaxed);
  if (out.colgen_rounds > 0 || out.colgen_columns_total > 0) {
    stats_.colgen_solves.fetch_add(1, std::memory_order_relaxed);
    stats_.colgen_rounds.fetch_add(out.colgen_rounds,
                                   std::memory_order_relaxed);
    stats_.colgen_columns_generated.fetch_add(out.colgen_columns_generated,
                                              std::memory_order_relaxed);
  }
  publish_solve(out);
}

ExactSolution ExactSolver::solve_impl(const Model& model,
                                      SolveContext* context) const {
  OBS_SPAN("solve");
  ExactSolution out;
  ExpandedModel em = ExpandedModel::from(model);

  if (context) {
    context->warm_attempted = false;
    context->warm_used = false;
    context->cost_shifts = 0;
  }

  // Remember the basis that produced the final answer so the NEXT solve in
  // this context starts warm.
  auto remember = [&](const std::vector<BasisColumn>& basis) {
    if (context && !basis.empty()) {
      context->warm = capture_warm_start(model, basis);
    }
  };

  // Tries both exact certification paths on a float-optimal result; fills
  // and returns `out` on success (certify_float_result above).
  const Parallel par = solve_parallel(context);
  auto certify = [&](const SimplexResult<double>& fp) -> bool {
    OBS_SPAN("certify");
    const auto t0 = Clock::now();
    const bool ok = certify_float_result(em, fp, options_, out, par);
    out.phase_times.certify_ns += ns_since(t0);
    if (!ok) return false;
    remember(fp.basis);
    return true;
  };

  // Warm attempt: replay the context basis through the dual simplex. ANY
  // inconclusive or non-optimal warm outcome — including a tolerance-level
  // infeasible verdict, which a drifted stale basis can fake — falls back
  // to the cold float pass, so a warm start costs at most one extra
  // (cheap) float solve, never a wrong answer and never an unnecessary
  // trip through the exact simplex.
  SimplexResult<double> fp;
  if (context && !context->warm.empty()) {
    OBS_SPAN("warm");
    ColumnLayout layout = ColumnLayout::from(em);
    if (auto columns = map_warm_basis(context->warm, model, em, layout)) {
      context->warm_attempted = true;
      SimplexOptions warm_options = options_.simplex;
      const std::size_t budget = options_.warm_pivot_budget != 0
                                     ? options_.warm_pivot_budget
                                     : 2 * em.rows.size() + 100;
      warm_options.max_iterations =
          std::min(warm_options.max_iterations, budget);
      DualSolveInfo info;
      SimplexResult<double> warm = solve_from_basis(
          em, std::move(layout), *columns, warm_options, &info);
      out.float_iterations += warm.iterations;
      out.phase_times += warm.phase_times;
      context->cost_shifts = info.cost_shifts;
      if (warm.status == SolveStatus::kOptimal) {
        if (certify(warm)) {
          context->warm_used = true;
          out.warm_started = true;
          return out;
        }
      }
      // Anything else — basis singular, stale past the pivot budget,
      // numerically hopeless, or a float-level infeasible/unbounded
      // verdict: fall through to the cold solve.
    }
  }

  // Cold solve: exact presolve first, float solve and certification on the
  // REDUCED model, exact postsolve back to the full one. The lifted pair is
  // re-verified against the full model below, so presolve can cost at most
  // a fallback, never a wrong answer.
  bool presolve_skip_cold = false;
  if (options_.presolve) {
    Presolved pre = [&] {
      OBS_SPAN("presolve");
      return presolve(em);
    }();
    if (pre.status == PresolveStatus::kInfeasible) {
      // The reductions run in exact rational arithmetic: this verdict is a
      // proof, no float or exact simplex pass needed.
      out.status = SolveStatus::kInfeasible;
      out.method = "presolve";
      out.presolve_rows_removed = pre.stats.rows_removed;
      out.presolve_cols_removed = pre.stats.cols_removed;
      return out;
    }
    if (!pre.identity()) {
      out.presolve_rows_removed = pre.stats.rows_removed;
      out.presolve_cols_removed = pre.stats.cols_removed;
      SimplexResult<double> fr = [&] {
        OBS_SPAN("float");
        return solve_simplex<double>(pre.reduced, options_.simplex);
      }();
      out.float_iterations += fr.iterations;
      out.phase_times += fr.phase_times;

      // Lifts an exact reduced-model optimum to the full model and runs
      // the full certificate as the final gate.
      auto lift_and_verify = [&](const std::vector<Rational>& x_reduced,
                                 const std::vector<Rational>& y_reduced,
                                 const std::vector<BasisColumn>& basis,
                                 const char* method) -> bool {
        Presolved::Lifted lifted =
            pre.postsolve(x_reduced, y_reduced, basis);
        if (!verify_certificate(em, lifted.primal, lifted.dual, par)) {
          return false;
        }
        out.status = SolveStatus::kOptimal;
        Rational obj(0);
        for (std::size_t j = 0; j < em.num_vars; ++j) {
          if (!em.objective[j].is_zero()) {
            obj.add_product(em.objective[j], lifted.primal[j]);
          }
        }
        out.primal = em.unshift(lifted.primal);
        out.dual = std::move(lifted.dual);
        out.objective = obj + em.objective_constant;
        out.certified = true;
        out.method = method;
        remember(lifted.basis);
        return true;
      };

      if (fr.status == SolveStatus::kOptimal) {
        OBS_SPAN("certify");
        const auto t0 = Clock::now();
        for (std::uint64_t cap : options_.denominator_caps) {
          auto x = reconstruct_vector(fr.primal, cap,
                                      options_.reconstruct_tolerance, par);
          auto y = reconstruct_vector(fr.dual, cap,
                                      options_.reconstruct_tolerance, par);
          if (!x || !y) continue;
          for (Rational& v : *x) {
            if (v.is_negative()) v = Rational(0);
          }
          if (!verify_certificate(pre.reduced, *x, *y, par)) continue;
          if (lift_and_verify(*x, *y, fr.basis, "double+certificate")) {
            out.phase_times.certify_ns += ns_since(t0);
            return out;
          }
        }
        if (options_.allow_basis_verification) {
          if (auto verified = verify_from_basis(pre.reduced, fr.basis, par)) {
            if (lift_and_verify(verified->primal, verified->dual, fr.basis,
                                "double+basis-verification")) {
              out.phase_times.certify_ns += ns_since(t0);
              return out;
            }
          }
        }
        out.phase_times.certify_ns += ns_since(t0);
      }
      // Reduced-model certification failed (or the reduced float solve was
      // not optimal): fall through to the shared full-model paths. A
      // non-optimal reduced verdict skips the redundant full float solve
      // and lets the exact fallback prove it, exactly like a cold float
      // verdict did before presolve existed; an optimal-but-uncertifiable
      // one retries cold on the full model first, mirroring the warm path.
      fp.status = fr.status;
      presolve_skip_cold = fr.status != SolveStatus::kOptimal;
    }
  }

  if (!presolve_skip_cold) {
    {
      OBS_SPAN("float");
      fp = solve_simplex<double>(em, options_.simplex);
    }
    out.float_iterations += fp.iterations;
    out.phase_times += fp.phase_times;
    if (fp.status == SolveStatus::kOptimal && certify(fp)) return out;
  }

  if (!options_.allow_exact_fallback) {
    out.status = fp.status == SolveStatus::kOptimal
                     ? SolveStatus::kIterationLimit
                     : fp.status;
    out.method = "double-only(uncertified)";
    return out;
  }

  // Exact fallback. Also the path that *proves* infeasibility/unboundedness
  // reported by the double pass.
  OBS_SPAN("exact_fallback");
  SimplexResult<Rational> ex = solve_simplex<Rational>(em, options_.simplex);
  out.exact_iterations = ex.iterations;
  out.status = ex.status;
  out.method = fp.status == SolveStatus::kOptimal ? "double+exact-simplex"
                                                  : "exact-simplex";
  if (ex.status != SolveStatus::kOptimal) return out;
  out.primal = em.unshift(ex.primal);
  out.dual = std::move(ex.dual);
  out.objective = ex.objective + em.objective_constant;
  out.certified = true;
  remember(ex.basis);
  return out;
}

ExactSolution solve_exact_simplex(const Model& model,
                                  const SimplexOptions& options) {
  ExactSolution out;
  ExpandedModel em = ExpandedModel::from(model);
  SimplexResult<Rational> ex = solve_simplex<Rational>(em, options);
  out.exact_iterations = ex.iterations;
  out.status = ex.status;
  out.method = "exact-simplex";
  if (ex.status != SolveStatus::kOptimal) return out;
  out.primal = em.unshift(ex.primal);
  out.dual = std::move(ex.dual);
  out.objective = ex.objective + em.objective_constant;
  out.certified = true;
  return out;
}

}  // namespace ssco::lp
