#include "lp/column_layout.h"

namespace ssco::lp {

ColumnLayout ColumnLayout::from(const ExpandedModel& em) {
  const std::size_t m = em.rows.size();
  ColumnLayout layout;
  layout.num_vars = em.num_vars;
  layout.flipped.assign(m, false);
  layout.sense.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    layout.flipped[i] = em.rows[i].rhs.is_negative();
    Sense s = em.rows[i].sense;
    if (layout.flipped[i]) {
      if (s == Sense::kLessEqual) {
        s = Sense::kGreaterEqual;
      } else if (s == Sense::kGreaterEqual) {
        s = Sense::kLessEqual;
      }
    }
    layout.sense[i] = s;
  }

  std::size_t next = em.num_vars;
  layout.slack_col.assign(m, kNone);
  layout.art_col.assign(m, kNone);
  for (std::size_t i = 0; i < m; ++i) {
    if (layout.sense[i] != Sense::kEqual) layout.slack_col[i] = next++;
  }
  layout.art_start_col = next;
  for (std::size_t i = 0; i < m; ++i) {
    if (layout.sense[i] != Sense::kLessEqual) layout.art_col[i] = next++;
  }
  layout.num_cols = next;
  layout.art_end_col = next;

  layout.column_identity.resize(layout.num_cols);
  for (std::size_t j = 0; j < em.num_vars; ++j) {
    layout.column_identity[j] = {BasisColumn::Kind::kStructural, j};
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (layout.slack_col[i] != kNone) {
      layout.column_identity[layout.slack_col[i]] = {
          layout.sense[i] == Sense::kLessEqual ? BasisColumn::Kind::kSlack
                                               : BasisColumn::Kind::kSurplus,
          i};
    }
    if (layout.art_col[i] != kNone) {
      layout.column_identity[layout.art_col[i]] = {
          BasisColumn::Kind::kArtificial, i};
    }
  }
  return layout;
}

}  // namespace ssco::lp
