#pragma once
// Exact sparse linear solves for simplex basis verification.
//
// When rounding the double simplex solution fails its optimality certificate
// (degenerate optima whose vertex coordinates have huge denominators), the
// basis itself is still almost always correct. This module recovers the
// EXACT basic solution from it: factor the basis matrix once in double
// precision with the shared sparse LU (lp/basis_lu.h), then run iterative
// refinement with exact rational residuals —
// each pass gains ~50 bits of accuracy — and reconstruct each component by
// continued fractions once the accumulated precision exceeds twice the
// denominator size. The candidate is verified exactly against the system, so
// the result is unconditionally correct (the scheme of QSopt_ex / exact
// SoPlex).

#include <optional>
#include <utility>
#include <vector>

#include "lp/parallel.h"
#include "num/rational.h"

namespace ssco::lp {

using num::BigInt;
using num::Rational;

/// Square sparse rational matrix, column-major.
struct SparseColumns {
  std::size_t n = 0;
  /// cols[j] = list of (row, value); rows unordered, no duplicates.
  std::vector<std::vector<std::pair<std::size_t, Rational>>> cols;

  [[nodiscard]] SparseColumns transposed() const;
  /// Exact matrix-vector product M * x.
  [[nodiscard]] std::vector<Rational> multiply(
      const std::vector<Rational>& x) const;
  /// Exact matrix-vector product M' * y (column-wise dots; no transpose
  /// materialized).
  [[nodiscard]] std::vector<Rational> multiply_transposed(
      const std::vector<Rational>& y) const;
};

struct ExactSolveOptions {
  /// Refinement iterations before giving up (each gains ~50 bits).
  int max_refinements = 80;
  /// Attempt rational reconstruction every this many refinements.
  int reconstruct_every = 4;
};

/// Solves M x = rhs exactly. Returns nullopt when M is numerically singular
/// or refinement fails to converge to a verifiable rational solution.
[[nodiscard]] std::optional<std::vector<Rational>> solve_sparse_exact(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const ExactSolveOptions& options = {});

/// Both systems a simplex basis verification needs — M x = rhs and
/// M' y = rhs_transposed — from ONE shared double LU factorization (FTRAN
/// for the straight system, BTRAN for the transposed one).
struct ExactBasisSolves {
  std::vector<Rational> solution;             // M x = rhs
  std::vector<Rational> transposed_solution;  // M' y = rhs_transposed
};
/// `parallel` shards the per-component rational work (residuals,
/// reconstruction, verification) and runs the two refinements concurrently
/// (each with its own BasisLu::Workspace against the one shared const LU),
/// splitting the thread budget between them. Every sharded loop is
/// element-independent or merged with exact arithmetic, so the result is
/// bit-identical to the serial solve at any budget.
[[nodiscard]] std::optional<ExactBasisSolves> solve_sparse_exact_pair(
    const SparseColumns& matrix, const std::vector<Rational>& rhs,
    const std::vector<Rational>& rhs_transposed,
    const ExactSolveOptions& options = {}, const Parallel& parallel = {});

}  // namespace ssco::lp
