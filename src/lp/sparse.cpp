#include "lp/sparse.h"

namespace ssco::lp {

std::size_t CscMatrix::add_column(const std::vector<Entry>& entries) {
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  col_start_.push_back(entries_.size());
  return num_cols() - 1;
}

double CscMatrix::dot_column(std::size_t j, const std::vector<double>& x) const {
  double acc = 0.0;
  for (const Entry* e = col_begin(j); e != col_end(j); ++e) {
    acc += e->value * x[e->row];
  }
  return acc;
}

void CscMatrix::scatter_column(std::size_t j, std::vector<double>& x) const {
  for (const Entry* e = col_begin(j); e != col_end(j); ++e) {
    x[e->row] = e->value;
  }
}

void CscMatrix::add_scaled_column(std::size_t j, double scale,
                                  std::vector<double>& x) const {
  for (const Entry* e = col_begin(j); e != col_end(j); ++e) {
    x[e->row] += scale * e->value;
  }
}

}  // namespace ssco::lp
