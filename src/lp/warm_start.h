#pragma once
// Basis snapshots that survive model rebuilds.
//
// A steady-state model is rebuilt from scratch after every platform delta,
// so raw column indices from the previous solve are meaningless — but the
// builders name every variable ("send_P3.P5_mP11") and row
// ("oneport_out_P3") deterministically on delta-stable node names
// (core/lp_names.h), and those names survive a delta untouched. A
// WarmStart therefore records the optimal basis as (kind, NAME) pairs;
// map_warm_basis() resolves the names against the NEW model, drops what no
// longer exists, and completes the selection with slack/artificial columns
// of uncovered rows so the dual simplex (lp/dual_simplex.h) always receives
// a full, loadable basis.
//
// Mapping is best-effort by design: a renamed or re-indexed entity pairs
// with the wrong column at worst, which costs extra pivots, never
// correctness — every warm solution still passes the exact certificate.

#include <optional>
#include <string>
#include <vector>

#include "lp/column_layout.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace ssco::lp {

struct WarmStart {
  struct Entry {
    BasisColumn::Kind kind = BasisColumn::Kind::kStructural;
    /// True when the entry's row is a materialized variable upper bound, in
    /// which case `name` is the VARIABLE's name.
    bool bound_row = false;
    /// Variable name for kStructural / bound rows; row name otherwise.
    std::string name;
  };
  std::vector<Entry> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }
};

/// Snapshots `basis` (one BasisColumn per expanded row of `model`) into
/// name-keyed form.
[[nodiscard]] WarmStart capture_warm_start(
    const Model& model, const std::vector<BasisColumn>& basis);

/// Resolves a snapshot against a new model: returns one expanded-column
/// index per row of `em`, duplicate-free, completed with slack/artificial
/// identity columns where the snapshot has no surviving answer. Returns
/// nullopt when the snapshot is empty or when completion cannot assemble a
/// full m-column selection (callers fall back to a cold solve; a returned
/// selection can still be numerically singular — load_basis decides).
[[nodiscard]] std::optional<std::vector<std::size_t>> map_warm_basis(
    const WarmStart& warm, const Model& model, const ExpandedModel& em,
    const ColumnLayout& layout);

/// Index-space translation of a BasisColumn list under `layout`, for warm
/// starts within one UNCHANGED model shape (no name round-trip). Returns
/// nullopt when some column has no representative under the layout.
[[nodiscard]] std::optional<std::vector<std::size_t>> columns_from_basis(
    const ColumnLayout& layout, const std::vector<BasisColumn>& basis);

}  // namespace ssco::lp
