#pragma once
// Dual revised simplex and the incremental re-solve driver.
//
// A platform delta (edge cost drift, node churn) turns yesterday's optimal
// basis into today's excellent guess: refactoring the old basis against the
// new constraint matrix typically leaves it a handful of pivots from the new
// optimum, where a cold solve would pay the full two-phase price. The warm
// path is the classic cost-shifting scheme (as in modern LP codes):
//
//   1. load the previous basis into the revised engine (lp/revised_simplex.h)
//      and refactorize it against the NEW matrix — bail to a cold solve when
//      the selection went singular;
//   2. wherever the basis is dual infeasible for the new costs, shift the
//      offending reduced costs to zero (a bounded cost perturbation that
//      makes the basis dual feasible BY CONSTRUCTION — the "after cost
//      perturbation" start the dual simplex requires);
//   3. run the DUAL simplex — bound-flipping dual ratio test over the same
//      BasisLU FTRAN/BTRAN kernel — until the basis is primal feasible
//      again. Dual unboundedness here proves the new LP primal infeasible;
//   4. if step 2 shifted anything, finish with ordinary primal phase 2 under
//      the true costs (warm too: the basis is primal feasible, so no
//      artificials and no phase 1).
//
// The result honours the full SimplexResult<double> contract, so ExactSolver
// certifies a warm solution through exactly the same paths as a cold one —
// warm starting is purely an accelerator, never a correctness assumption.

#include <cstddef>

#include "lp/revised_simplex.h"
#include "lp/simplex.h"

namespace ssco::lp {

/// Per-solve telemetry of the warm path (for benches and tests).
struct DualSolveInfo {
  /// Reduced costs shifted in step 2 (0 = basis was already dual feasible).
  std::size_t cost_shifts = 0;
  std::size_t dual_pivots = 0;
  std::size_t primal_pivots = 0;
};

/// Re-solves `em` starting from the given basis column selection (expanded
/// column indices, one per row). Returns kIterationLimit when the basis is
/// unusable (singular / malformed / out of iterations) — the caller should
/// fall back to a cold solve; kInfeasible and kUnbounded are genuine
/// (tolerance-level) verdicts about the new LP.
[[nodiscard]] SimplexResult<double> solve_from_basis(
    const ExpandedModel& em, const std::vector<std::size_t>& basis_columns,
    const SimplexOptions& options, DualSolveInfo* info = nullptr);

/// Same, reusing a layout the caller already built (the warm-start mapping
/// needs one anyway; `layout` must equal ColumnLayout::from(em)).
[[nodiscard]] SimplexResult<double> solve_from_basis(
    const ExpandedModel& em, ColumnLayout layout,
    const std::vector<std::size_t>& basis_columns,
    const SimplexOptions& options, DualSolveInfo* info = nullptr);

}  // namespace ssco::lp
