#include "lp/dual_simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace ssco::lp {

// ---- RevisedSimplex warm-start / dual extensions -------------------------

bool RevisedSimplex::load_basis(const std::vector<std::size_t>& columns) {
  if (columns.size() != m_) {
    ok_ = false;
    return false;
  }
  std::fill(pos_of_col_.begin(), pos_of_col_.end(), kNone);
  std::fill(at_upper_.begin(), at_upper_.end(), false);
  for (std::size_t k = 0; k < m_; ++k) {
    const std::size_t c = columns[k];
    if (c >= num_cols_ || pos_of_col_[c] != kNone) {
      ok_ = false;
      return false;
    }
    basis_[k] = c;
    pos_of_col_[c] = k;
  }
  ok_ = refactor();
  return ok_;
}

void RevisedSimplex::set_column_upper_bound(std::size_t col, double ub) {
  assert(col < num_cols_);
  assert(pos_of_col_[col] == kNone && !at_upper_[col]);
  // Callers speak original units; the engine stores the scaled bound
  // (x~ = x / c_j, so ub~ = ub / c_j).
  ub_[col] = ub / col_scale_[col];
}

std::size_t RevisedSimplex::make_dual_feasible(std::vector<double>& cost) {
  compute_multipliers(cost);
  std::size_t shifted = 0;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (pos_of_col_[j] != kNone || barred_[j] || ub_[j] <= 0.0) continue;
    const double d = A_.dot_column(j, y_) - cost[j];
    const bool bad = at_upper_[j] ? d > kEps : d < -kEps;
    if (bad) {
      cost[j] += d;  // reduced cost becomes exactly zero
      ++shifted;
    }
  }
  return shifted;
}

double RevisedSimplex::primal_infeasibility() const {
  double worst = 0.0;
  for (std::size_t k = 0; k < m_; ++k) {
    worst = std::max(worst, -xb_[k]);
    worst = std::max(worst, xb_[k] - ub_[basis_[k]]);
  }
  return worst;
}

bool RevisedSimplex::has_boxed_at_upper() const {
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (at_upper_[j] && pos_of_col_[j] == kNone && ub_[j] > 0.0 &&
        std::isfinite(ub_[j])) {
      return true;
    }
  }
  return false;
}

void RevisedSimplex::flip_bound(std::size_t j) {
  work_.assign(m_, 0.0);
  A_.scatter_column(j, work_);
  timed_ftran(work_);
  // Moving the nonbasic value from bound to bound shifts the effective RHS:
  // lower->upper subtracts ub * B^-1 A_j from the basic values.
  const double step = at_upper_[j] ? ub_[j] : -ub_[j];
  for (std::size_t k = 0; k < m_; ++k) {
    if (work_[k] == 0.0) continue;
    xb_[k] += step * work_[k];
    if (std::fabs(xb_[k]) < kZeroTol) xb_[k] = 0.0;
  }
  at_upper_[j] = !at_upper_[j];
}

SolveStatus RevisedSimplex::dual_optimize(const std::vector<double>& cost,
                                          const SimplexOptions& opt,
                                          std::size_t& iterations) {
  struct Cand {
    std::size_t col = 0;
    double ratio = 0.0;
    double alpha = 0.0;
  };
  std::vector<Cand> cands;
  std::vector<std::size_t> flips;
  std::size_t degenerate_run = 0;
  // Dual Devex: reference weights per basis POSITION. The leaving row is
  // the most violating row in the weighted norm viol^2 / w; weights update
  // from the FTRAN-transformed entering column, which the exchange computes
  // anyway, so dual Devex is essentially free per pivot.
  const bool devex = opt.pricing == PricingRule::kDevex;
  std::vector<double> row_w(m_, 1.0);

  while (true) {
    if (!ok_) return SolveStatus::kIterationLimit;
    if (iterations >= opt.max_iterations) return SolveStatus::kIterationLimit;
    const bool bland = degenerate_run >= opt.bland_after;

    // 1. Leaving row: the basic value violating [0, ub] the most — in the
    // Devex-weighted norm unless degeneracy forced Bland mode (then: the
    // violated row with the smallest column index).
    std::size_t r = kNone;
    double worst = 0.0;
    for (std::size_t k = 0; k < m_; ++k) {
      const double viol = std::max(-xb_[k], xb_[k] - ub_[basis_[k]]);
      if (viol <= kFeasTol) continue;
      if (bland) {
        if (r == kNone || basis_[k] < basis_[r]) r = k;
      } else {
        const double score =
            devex ? viol * viol / row_w[k] : viol;
        if (r == kNone || score > worst) {
          worst = score;
          r = k;
        }
      }
    }
    if (r == kNone) return SolveStatus::kOptimal;
    const bool below = xb_[r] < 0.0;
    const double infeas = below ? -xb_[r] : xb_[r] - ub_[basis_[r]];

    // 2. Pricing row rho = r-th row of B^-1, and multipliers for d_j.
    rho_.assign(m_, 0.0);
    rho_[r] = 1.0;
    timed_btran(rho_);
    compute_multipliers(cost);

    // 3. Dual ratio test candidates: nonbasic columns whose movement can
    // push xb_[r] back toward its violated bound while keeping every
    // reduced cost on its feasible side. Normalizing by `dir` folds the
    // below/above cases into one sign test.
    const double dir = below ? -1.0 : 1.0;
    cands.clear();
    compute_pivot_row(rho_);  // columns it misses have alpha == 0: no cand
    for (std::size_t j : touched_cols_) {
      if (pos_of_col_[j] != kNone || barred_[j] || ub_[j] <= 0.0) continue;
      const double alpha = alpha_[j];
      const double abar = dir * alpha;
      if (at_upper_[j] ? abar >= -kEps : abar <= kEps) continue;
      double d = A_.dot_column(j, y_) - cost[j];
      // Clamp dual drift to the feasible side: tiny violations become
      // zero-ratio pivots that restore feasibility instead of poisoning
      // the minimum.
      d = at_upper_[j] ? std::min(d, 0.0) : std::max(d, 0.0);
      cands.push_back({j, d / abar, alpha});
    }
    if (cands.empty()) {
      // No dual step can mend row r: dual unbounded, primal infeasible.
      // Confirm against a fresh factorization first — through a long eta
      // file the candidate alphas are drifted, and a false verdict here
      // costs the caller its cheap fallbacks.
      if (lu_->updates() > 0) {
        ok_ = refactor();
        continue;
      }
      return SolveStatus::kInfeasible;
    }

    std::size_t entering = kNone;
    double entering_ratio = 0.0;
    flips.clear();
    if (bland) {
      // Anti-cycling: minimum ratio, smallest column index on ties; no
      // bound flips (flips are a long-step optimization, not needed for
      // finiteness).
      double min_ratio = cands.front().ratio;
      for (const Cand& c : cands) min_ratio = std::min(min_ratio, c.ratio);
      for (const Cand& c : cands) {
        if (c.ratio > min_ratio + kTieTol) continue;
        if (entering == kNone || c.col < entering) entering = c.col;
      }
      entering_ratio = min_ratio;
    } else {
      // Bound-flipping ratio test (Maros): walk the breakpoints in ratio
      // order; a candidate whose own bound range cannot absorb the
      // remaining infeasibility is cheaper to FLIP to its opposite bound
      // (dual feasibility is preserved — its reduced cost changes sign
      // exactly when its bound status does) than to bring into the basis.
      std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
        if (a.ratio != b.ratio) return a.ratio < b.ratio;
        return std::fabs(a.alpha) > std::fabs(b.alpha);
      });
      double remaining = infeas;
      for (const Cand& c : cands) {
        const double capacity =
            std::isfinite(ub_[c.col])
                ? ub_[c.col] * std::fabs(c.alpha)
                : std::numeric_limits<double>::infinity();
        if (capacity < remaining - kFeasTol) {
          flips.push_back(c.col);
          remaining -= capacity;
        } else {
          entering = c.col;
          entering_ratio = c.ratio;
          break;
        }
      }
      if (entering == kNone) {
        // Even flipping every breakpoint leaves row r violated.
        if (lu_->updates() > 0) {
          ok_ = refactor();
          continue;
        }
        return SolveStatus::kInfeasible;
      }
    }

    for (std::size_t j : flips) flip_bound(j);

    // 4. Exchange. The FTRAN-transformed entering column gives the step.
    work_.assign(m_, 0.0);
    A_.scatter_column(entering, work_);
    timed_ftran(work_);
    if (std::fabs(work_[r]) <= kEps) {
      // Pivot weight vanished under the accumulated eta file: refresh and
      // retry; if even a fresh factorization disagrees with the pricing
      // row, the basis is numerically hopeless — bail to the cold path.
      if (lu_->updates() == 0) return SolveStatus::kIterationLimit;
      ok_ = refactor();
      continue;
    }

    if (devex && !bland) {
      // Dual Devex weight update from the transformed entering column.
      const double arq = work_[r];
      const double wr_over = row_w[r] / (arq * arq);
      for (std::size_t k = 0; k < m_; ++k) {
        if (k == r || work_[k] == 0.0) continue;
        const double cand = work_[k] * work_[k] * wr_over;
        if (cand > row_w[k]) row_w[k] = cand;
      }
      row_w[r] = std::max(wr_over, 1.0);
      if (wr_over > kDevexReset) {
        std::fill(row_w.begin(), row_w.end(), 1.0);
      }
    }

    const double target = below ? 0.0 : ub_[basis_[r]];
    const double t = (xb_[r] - target) / work_[r];
    const double entering_origin = at_upper_[entering] ? ub_[entering] : 0.0;
    for (std::size_t k = 0; k < m_; ++k) {
      if (k == r || work_[k] == 0.0) continue;
      xb_[k] -= t * work_[k];
      if (std::fabs(xb_[k]) < kZeroTol) xb_[k] = 0.0;
    }
    xb_[r] = entering_origin + t;

    const std::size_t leaving_col = basis_[r];
    at_upper_[leaving_col] =
        !below && std::isfinite(ub_[leaving_col]) && ub_[leaving_col] > 0.0;
    pos_of_col_[leaving_col] = kNone;
    basis_[r] = entering;
    pos_of_col_[entering] = r;
    at_upper_[entering] = false;
    if (!lu_->update(r, work_) || should_refactor()) {
      ok_ = refactor();
    }

    if (entering_ratio <= kDegenTol) {
      ++degenerate_run;
    } else {
      degenerate_run = 0;
    }
    ++iterations;
  }
}

// ---- Warm re-solve driver ------------------------------------------------

SimplexResult<double> solve_from_basis(
    const ExpandedModel& em, const std::vector<std::size_t>& basis_columns,
    const SimplexOptions& options, DualSolveInfo* info) {
  return solve_from_basis(em, ColumnLayout::from(em), basis_columns, options,
                          info);
}

SimplexResult<double> solve_from_basis(
    const ExpandedModel& em, ColumnLayout layout,
    const std::vector<std::size_t>& basis_columns,
    const SimplexOptions& options, DualSolveInfo* info) {
  SimplexResult<double> result;
  // Defer the identity-basis factorization: load_basis replaces it anyway.
  RevisedSimplex simplex(em, std::move(layout), /*defer_initial_factor=*/true,
                         options.equilibrate);
  if (!simplex.load_basis(basis_columns)) return result;  // caller goes cold

  const std::vector<double> cost = simplex.phase2_costs();
  std::vector<double> shifted = cost;
  const std::size_t shifts = simplex.make_dual_feasible(shifted);
  if (info) info->cost_shifts = shifts;

  std::size_t dual_iters = 0;
  const SolveStatus dual = simplex.dual_optimize(shifted, options, dual_iters);
  result.iterations += dual_iters;
  result.phase_times = simplex.phase_times();
  if (info) info->dual_pivots = dual_iters;
  if (dual != SolveStatus::kOptimal) {
    result.status = dual;
    return result;
  }

  // Finish with true-cost primal pivots. Even a shift-free dual phase runs
  // this sweep: the dual ratio test maintains dual feasibility only up to
  // tolerance, and the final pricing pass repairs any drift cheaply (zero
  // pivots when the basis is genuinely optimal) — without it, drifted warm
  // optima fail the exact certificate and trigger the costly fallbacks.
  if (simplex.has_boxed_at_upper()) {
    if (shifts == 0) {
      // Boxed columns parked at their upper bound are legitimate dual-
      // simplex optima, but the bound-blind primal loop cannot touch them.
      result.status = SolveStatus::kOptimal;
    } else {
      // Production models carry no finite boxes; hand crafted instances
      // back to the cold path rather than miscompute.
      result.status = SolveStatus::kIterationLimit;
      return result;
    }
  } else {
    // One cumulative pivot budget for the whole warm attempt: the primal
    // cleanup only gets what the dual phase left over.
    SimplexOptions primal_options = options;
    primal_options.max_iterations =
        options.max_iterations > dual_iters
            ? options.max_iterations - dual_iters
            : 0;
    std::size_t primal_iters = 0;
    const SolveStatus primal =
        simplex.optimize(cost, primal_options, primal_iters);
    result.iterations += primal_iters;
    result.phase_times = simplex.phase_times();
    if (info) info->primal_pivots = primal_iters;
    result.status = primal;
    if (primal != SolveStatus::kOptimal) return result;
  }

  simplex.refresh();
  if (!simplex.ok()) {
    result.status = SolveStatus::kIterationLimit;
    return result;
  }
  result.primal = simplex.extract_primal();
  result.dual = simplex.extract_duals(cost);
  result.objective = simplex.objective_value(cost);
  result.basis = simplex.extract_basis();
  result.phase_times = simplex.phase_times();
  return result;
}

}  // namespace ssco::lp
