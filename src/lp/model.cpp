#include "lp/model.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ssco::lp {

VarId Model::add_variable(std::string name, Rational lower,
                          std::optional<Rational> upper) {
  if (upper && *upper < lower) {
    throw std::invalid_argument("Model: variable '" + name +
                                "' has upper < lower");
  }
  VarId id{var_names_.size()};
  var_names_.push_back(std::move(name));
  lower_.push_back(std::move(lower));
  upper_.push_back(std::move(upper));
  objective_.emplace_back(0);
  return id;
}

void Model::set_objective(VarId var, Rational coeff) {
  objective_.at(var.index) = std::move(coeff);
}

RowId Model::add_constraint(const LinearExpr& expr, Sense sense, Rational rhs,
                            std::string name) {
  // Merge duplicate variables and drop exact zeros.
  std::map<std::size_t, Rational> merged;
  for (const auto& [var, coeff] : expr.terms()) {
    if (var.index >= var_names_.size()) {
      throw std::out_of_range("Model: constraint references unknown variable");
    }
    merged[var.index] += coeff;
  }
  Row row;
  row.name = std::move(name);
  row.sense = sense;
  row.rhs = std::move(rhs);
  row.coeffs.reserve(merged.size());
  for (auto& [idx, coeff] : merged) {
    if (!coeff.is_zero()) row.coeffs.emplace_back(idx, std::move(coeff));
  }
  RowId id{rows_.size()};
  rows_.push_back(std::move(row));
  return id;
}

std::size_t Model::num_nonzeros() const {
  std::size_t nnz = 0;
  for (const Row& r : rows_) nnz += r.coeffs.size();
  return nnz;
}

Rational Model::eval_row(RowId r, const std::vector<Rational>& x) const {
  const Row& row = rows_.at(r.index);
  Rational acc(0);
  for (const auto& [idx, coeff] : row.coeffs) {
    acc += coeff * x.at(idx);
  }
  return acc;
}

Rational Model::eval_objective(const std::vector<Rational>& x) const {
  Rational acc(0);
  for (std::size_t j = 0; j < objective_.size(); ++j) {
    if (!objective_[j].is_zero()) acc += objective_[j] * x.at(j);
  }
  return acc;
}

bool Model::is_feasible(const std::vector<Rational>& x) const {
  if (x.size() != var_names_.size()) return false;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < lower_[j]) return false;
    if (upper_[j] && x[j] > *upper_[j]) return false;
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    Rational lhs = eval_row(RowId{i}, x);
    switch (rows_[i].sense) {
      case Sense::kLessEqual:
        if (lhs > rows_[i].rhs) return false;
        break;
      case Sense::kEqual:
        if (lhs != rows_[i].rhs) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < rows_[i].rhs) return false;
        break;
    }
  }
  return true;
}

}  // namespace ssco::lp
