#include "lp/model.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ssco::lp {

VarId Model::add_variable(std::string name, Rational lower,
                          std::optional<Rational> upper) {
  if (upper && *upper < lower) {
    throw std::invalid_argument("Model: variable '" + name +
                                "' has upper < lower");
  }
  VarId id{var_names_.size()};
  var_names_.push_back(std::move(name));
  lower_.push_back(std::move(lower));
  upper_.push_back(std::move(upper));
  objective_.emplace_back(0);
  return id;
}

void Model::set_objective(VarId var, Rational coeff) {
  objective_.at(var.index) = std::move(coeff);
}

RowId Model::add_constraint(const LinearExpr& expr, Sense sense, Rational rhs,
                            std::string name) {
  // Merge duplicate variables and drop exact zeros: argsort pointers to the
  // terms and fold adjacent runs, copying each coefficient exactly once
  // (duplicates are rare, so no per-term rational additions or tree nodes).
  std::vector<const std::pair<VarId, Rational>*> order;
  order.reserve(expr.terms().size());
  for (const auto& term : expr.terms()) {
    if (term.first.index >= var_names_.size()) {
      throw std::out_of_range("Model: constraint references unknown variable");
    }
    order.push_back(&term);
  }
  std::stable_sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return a->first.index < b->first.index;
  });
  Row row;
  row.name = std::move(name);
  row.sense = sense;
  row.rhs = std::move(rhs);
  row.coeffs.reserve(order.size());
  for (const auto* term : order) {
    if (!row.coeffs.empty() && row.coeffs.back().first == term->first.index) {
      row.coeffs.back().second += term->second;
    } else {
      row.coeffs.emplace_back(term->first.index, term->second);
    }
  }
  std::erase_if(row.coeffs,
                [](const auto& entry) { return entry.second.is_zero(); });
  RowId id{rows_.size()};
  rows_.push_back(std::move(row));
  return id;
}

VarId Model::add_column(std::string name, Rational objective,
                        const std::vector<std::pair<RowId, Rational>>& entries) {
  // Validate everything before touching the model: a throw below this
  // block would leave a half-added column behind.
  for (std::size_t a = 0; a < entries.size(); ++a) {
    if (entries[a].first.index >= rows_.size()) {
      throw std::out_of_range("Model: column references unknown row");
    }
    for (std::size_t b = a + 1; b < entries.size(); ++b) {
      if (entries[a].first == entries[b].first) {
        throw std::invalid_argument("Model: duplicate row in column entries");
      }
    }
  }
  VarId id = add_variable(std::move(name));
  set_objective(id, std::move(objective));
  for (const auto& [row, coeff] : entries) {
    if (coeff.is_zero()) continue;
    rows_[row.index].coeffs.emplace_back(id.index, coeff);
  }
  return id;
}

std::size_t Model::num_nonzeros() const {
  std::size_t nnz = 0;
  for (const Row& r : rows_) nnz += r.coeffs.size();
  return nnz;
}

Rational Model::eval_row(RowId r, const std::vector<Rational>& x) const {
  const Row& row = rows_.at(r.index);
  Rational acc(0);
  for (const auto& [idx, coeff] : row.coeffs) {
    acc.add_product(coeff, x.at(idx));
  }
  return acc;
}

Rational Model::eval_objective(const std::vector<Rational>& x) const {
  Rational acc(0);
  for (std::size_t j = 0; j < objective_.size(); ++j) {
    if (!objective_[j].is_zero()) acc.add_product(objective_[j], x.at(j));
  }
  return acc;
}

bool Model::is_feasible(const std::vector<Rational>& x) const {
  if (x.size() != var_names_.size()) return false;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < lower_[j]) return false;
    if (upper_[j] && x[j] > *upper_[j]) return false;
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    Rational lhs = eval_row(RowId{i}, x);
    switch (rows_[i].sense) {
      case Sense::kLessEqual:
        if (lhs > rows_[i].rhs) return false;
        break;
      case Sense::kEqual:
        if (lhs != rows_[i].rhs) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < rows_[i].rhs) return false;
        break;
    }
  }
  return true;
}

}  // namespace ssco::lp
