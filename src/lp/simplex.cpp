#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lp/column_layout.h"
#include "lp/revised_simplex.h"

namespace ssco::lp {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

ExpandedModel ExpandedModel::from(const Model& model) {
  ExpandedModel em;
  em.num_vars = model.num_variables();
  em.shift.resize(em.num_vars, Rational(0));
  em.objective.resize(em.num_vars, Rational(0));
  for (std::size_t j = 0; j < em.num_vars; ++j) {
    VarId v{j};
    em.shift[j] = model.lower_bound(v);
    em.objective[j] = model.objective_coeff(v);
    if (!em.shift[j].is_zero()) {
      em.objective_constant.add_product(em.objective[j], em.shift[j]);
    }
  }

  em.num_model_rows = model.num_rows();
  em.rows.reserve(model.num_rows());
  for (const Model::Row& row : model.rows()) {
    Row r;
    r.sense = row.sense;
    r.rhs = row.rhs;
    r.coeffs = row.coeffs;
    for (const auto& [idx, coeff] : r.coeffs) {
      if (!em.shift[idx].is_zero()) r.rhs.sub_product(coeff, em.shift[idx]);
    }
    em.rows.push_back(std::move(r));
  }
  // Materialize finite upper bounds as rows (in shifted space: x' <= u - l).
  for (std::size_t j = 0; j < em.num_vars; ++j) {
    const auto& upper = model.upper_bound(VarId{j});
    if (!upper) continue;
    Row r;
    r.sense = Sense::kLessEqual;
    r.rhs = *upper - em.shift[j];
    r.coeffs.emplace_back(j, Rational(1));
    em.rows.push_back(std::move(r));
  }
  return em;
}

std::size_t ExpandedModel::append_column(
    const Rational& objective,
    const std::vector<std::pair<std::size_t, Rational>>& entries) {
  const std::size_t var = num_vars++;
  shift.emplace_back(0);
  this->objective.push_back(objective);
  for (const auto& [row, coeff] : entries) {
    if (row >= num_model_rows) {
      throw std::out_of_range("ExpandedModel: column entry past model rows");
    }
    if (!coeff.is_zero()) rows[row].coeffs.emplace_back(var, coeff);
  }
  return var;
}

std::size_t ExpandedModel::append_row(Sense sense, const Rational& rhs) {
  if (rows.size() != num_model_rows) {
    // Bound rows live after the model rows; appending a model row would
    // renumber them under every live consumer.
    throw std::logic_error("ExpandedModel: append_row with bound rows");
  }
  Row r;
  r.sense = sense;
  r.rhs = rhs;
  rows.push_back(std::move(r));
  return num_model_rows++;
}

std::vector<Rational> ExpandedModel::unshift(
    const std::vector<Rational>& x_shifted) const {
  std::vector<Rational> x(num_vars, Rational(0));
  for (std::size_t j = 0; j < num_vars; ++j) {
    x[j] = x_shifted[j] + shift[j];
  }
  return x;
}

namespace {

// The dense tableau below is only instantiated for num::Rational nowadays —
// the double regime runs the sparse revised simplex (lp/revised_simplex.h) —
// but it stays templated on the scalar via this trait.
template <typename T>
struct Ops;

template <>
struct Ops<num::Rational> {
  static num::Rational from(const Rational& r) { return r; }
  static bool is_zero(const num::Rational& v) { return v.is_zero(); }
  static bool is_neg(const num::Rational& v) { return v.signum() < 0; }
  static bool is_pos(const num::Rational& v) { return v.signum() > 0; }
  static void addmul(num::Rational& acc, const num::Rational& a,
                     const num::Rational& b) {
    acc.add_product(a, b);
  }
  static void submul(num::Rational& acc, const num::Rational& a,
                     const num::Rational& b) {
    acc.sub_product(a, b);
  }
};

template <typename T>
class Tableau {
 public:
  explicit Tableau(const ExpandedModel& em)
      : em_(em), layout_(ColumnLayout::from(em)) {
    const std::size_t m = em.rows.size();
    num_cols_ = layout_.num_cols;

    tab_.assign(m, std::vector<T>(num_cols_, T{}));
    b_.assign(m, T{});
    barred_.assign(num_cols_, false);
    basis_.assign(m, kNone);

    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = em.rows[i];
      for (const auto& [idx, coeff] : row.coeffs) {
        T v = Ops<T>::from(coeff);
        tab_[i][idx] = layout_.flipped[i] ? -v : v;
      }
      Rational rhs = layout_.flipped[i] ? -row.rhs : row.rhs;
      b_[i] = Ops<T>::from(rhs);
      Sense s = layout_.sense[i];
      if (s == Sense::kLessEqual) {
        tab_[i][layout_.slack_col[i]] = T{1};
        basis_[i] = layout_.slack_col[i];
      } else if (s == Sense::kGreaterEqual) {
        tab_[i][layout_.slack_col[i]] = T{-1};
        tab_[i][layout_.art_col[i]] = T{1};
        basis_[i] = layout_.art_col[i];
        barred_[layout_.art_col[i]] = true;
      } else {
        tab_[i][layout_.art_col[i]] = T{1};
        basis_[i] = layout_.art_col[i];
        barred_[layout_.art_col[i]] = true;
      }
    }
  }

  [[nodiscard]] bool has_artificials() const {
    return layout_.has_artificials();
  }

  /// Runs the pivot loop for the given column costs. Returns kOptimal when all
  /// reduced costs are non-negative, kUnbounded on an unbounded ray.
  SolveStatus optimize(const std::vector<T>& cost, const SimplexOptions& opt,
                       std::size_t& iterations) {
    compute_zrow(cost);
    std::size_t degenerate_run = 0;
    while (true) {
      if (iterations >= opt.max_iterations) return SolveStatus::kIterationLimit;
      const bool bland = degenerate_run >= opt.bland_after;
      std::size_t entering = kNone;
      if (bland) {
        for (std::size_t j = 0; j < num_cols_; ++j) {
          if (!barred_[j] && Ops<T>::is_neg(zrow_[j])) {
            entering = j;
            break;
          }
        }
      } else {
        T best{};
        for (std::size_t j = 0; j < num_cols_; ++j) {
          if (!barred_[j] && Ops<T>::is_neg(zrow_[j]) && zrow_[j] < best) {
            best = zrow_[j];
            entering = j;
          }
        }
      }
      if (entering == kNone) return SolveStatus::kOptimal;

      // Ratio test; ties broken toward the smallest basic index (Bland-safe).
      std::size_t leaving = kNone;
      for (std::size_t i = 0; i < tab_.size(); ++i) {
        if (!Ops<T>::is_pos(tab_[i][entering])) continue;
        if (leaving == kNone) {
          leaving = i;
          continue;
        }
        // Compare b_[i]/tab_[i][e] vs b_[leaving]/tab_[leaving][e] without
        // division: cross-multiply (both pivots positive).
        T lhs = b_[i] * tab_[leaving][entering];
        T rhs = b_[leaving] * tab_[i][entering];
        if (lhs < rhs || (!(rhs < lhs) && basis_[i] < basis_[leaving])) {
          leaving = i;
        }
      }
      if (leaving == kNone) return SolveStatus::kUnbounded;

      if (Ops<T>::is_zero(b_[leaving])) {
        ++degenerate_run;
      } else {
        degenerate_run = 0;
      }
      pivot(leaving, entering);
      ++iterations;
    }
  }

  /// After a feasible phase 1, pivot basic artificials out wherever possible
  /// and permanently bar the rest (redundant rows).
  void expel_artificials() {
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (basis_[i] == kNone || !is_artificial(basis_[i])) continue;
      std::size_t entering = kNone;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        if (is_artificial(j)) continue;
        if (!Ops<T>::is_zero(tab_[i][j])) {
          entering = j;
          break;
        }
      }
      if (entering != kNone) pivot(i, entering);
      // else: redundant row; the artificial stays basic at value 0 and is
      // already barred from entering anywhere else.
    }
  }

  [[nodiscard]] T phase1_infeasibility() const {
    // Sum of basic artificial values (all artificials are basic or zero).
    T total{};
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (basis_[i] != kNone && is_artificial(basis_[i])) total += b_[i];
    }
    return total;
  }

  [[nodiscard]] std::vector<T> extract_primal() const {
    std::vector<T> x(em_.num_vars, T{});
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (basis_[i] < em_.num_vars) x[basis_[i]] = b_[i];
    }
    return x;
  }

  [[nodiscard]] T objective_value(const std::vector<T>& cost) const {
    T z{};
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (basis_[i] != kNone && !Ops<T>::is_zero(cost[basis_[i]])) {
        Ops<T>::addmul(z, cost[basis_[i]], b_[i]);
      }
    }
    return z;
  }

  /// Duals in the sign convention of the ORIGINAL (unflipped) rows. Must be
  /// called after optimize(): uses the current reduced-cost row.
  [[nodiscard]] std::vector<T> extract_duals() const {
    std::vector<T> y(tab_.size(), T{});
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      // The column that started as e_i: slack for <=, artificial otherwise.
      std::size_t idcol = layout_.sense[i] == Sense::kLessEqual
                              ? layout_.slack_col[i]
                              : layout_.art_col[i];
      T v = zrow_[idcol];
      y[i] = layout_.flipped[i] ? -v : v;
    }
    return y;
  }

  [[nodiscard]] std::vector<T> phase2_costs() const {
    std::vector<T> cost(num_cols_, T{});
    for (std::size_t j = 0; j < em_.num_vars; ++j) {
      cost[j] = Ops<T>::from(em_.objective[j]);
    }
    return cost;
  }

  [[nodiscard]] std::vector<T> phase1_costs() const {
    std::vector<T> cost(num_cols_, T{});
    for (std::size_t c : layout_.art_col) {
      if (c != kNone) cost[c] = T{-1};
    }
    return cost;
  }

  /// Describes the current basis in expanded-model terms.
  [[nodiscard]] std::vector<BasisColumn> extract_basis() const {
    std::vector<BasisColumn> basis(tab_.size());
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      basis[i] = layout_.column_identity[basis_[i]];
    }
    return basis;
  }

 private:
  static constexpr std::size_t kNone = ColumnLayout::kNone;

  [[nodiscard]] bool is_artificial(std::size_t col) const {
    return layout_.is_artificial(col);
  }

  void compute_zrow(const std::vector<T>& cost) {
    zrow_.assign(num_cols_, T{});
    for (std::size_t j = 0; j < num_cols_; ++j) {
      T z{};
      for (std::size_t i = 0; i < tab_.size(); ++i) {
        if (basis_[i] != kNone && !Ops<T>::is_zero(cost[basis_[i]]) &&
            !Ops<T>::is_zero(tab_[i][j])) {
          Ops<T>::addmul(z, cost[basis_[i]], tab_[i][j]);
        }
      }
      zrow_[j] = z - cost[j];
    }
  }

  void pivot(std::size_t r, std::size_t e) {
    const T pivot_value = tab_[r][e];
    // Normalize pivot row.
    if (!(pivot_value == T{1})) {
      for (std::size_t j = 0; j < num_cols_; ++j) {
        if (!Ops<T>::is_zero(tab_[r][j])) tab_[r][j] = tab_[r][j] / pivot_value;
      }
      b_[r] = b_[r] / pivot_value;
    }
    tab_[r][e] = T{1};
    // The pivot row is sparse on these LPs; collect its nonzero columns once
    // so every elimination below touches only those instead of all num_cols_.
    pivot_cols_.clear();
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (!Ops<T>::is_zero(tab_[r][j])) pivot_cols_.push_back(j);
    }
    // Eliminate from all other rows and from the reduced-cost row.
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (i == r) continue;
      T factor = tab_[i][e];
      if (Ops<T>::is_zero(factor)) continue;
      for (std::size_t j : pivot_cols_) {
        Ops<T>::submul(tab_[i][j], factor, tab_[r][j]);
      }
      tab_[i][e] = T{};
      Ops<T>::submul(b_[i], factor, b_[r]);
    }
    {
      T factor = zrow_[e];
      if (!Ops<T>::is_zero(factor)) {
        for (std::size_t j : pivot_cols_) {
          Ops<T>::submul(zrow_[j], factor, tab_[r][j]);
        }
        zrow_[e] = T{};
      }
    }
    basis_[r] = e;
  }

  const ExpandedModel& em_;
  ColumnLayout layout_;
  std::size_t num_cols_ = 0;
  std::vector<std::vector<T>> tab_;
  std::vector<T> b_;
  std::vector<T> zrow_;
  std::vector<std::size_t> basis_;
  std::vector<bool> barred_;
  std::vector<std::size_t> pivot_cols_;  // scratch for pivot()
};

}  // namespace

template <typename T>
SimplexResult<T> solve_simplex(const ExpandedModel& em,
                               const SimplexOptions& options) {
  SimplexResult<T> result;
  Tableau<T> tableau(em);

  if (tableau.has_artificials()) {
    auto cost1 = tableau.phase1_costs();
    SolveStatus s1 = tableau.optimize(cost1, options, result.iterations);
    if (s1 == SolveStatus::kIterationLimit) {
      result.status = s1;
      return result;
    }
    // Phase 1 maximizes -sum(artificials); feasible iff the residual is zero.
    T residual = tableau.phase1_infeasibility();
    if (Ops<T>::is_pos(residual)) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    tableau.expel_artificials();
  }

  auto cost2 = tableau.phase2_costs();
  SolveStatus s2 = tableau.optimize(cost2, options, result.iterations);
  result.status = s2;
  if (s2 != SolveStatus::kOptimal) return result;

  result.primal = tableau.extract_primal();
  result.dual = tableau.extract_duals();
  result.objective = tableau.objective_value(cost2);
  result.basis = tableau.extract_basis();
  return result;
}

/// The double regime: sparse revised simplex with an LU-factorized basis.
template <>
SimplexResult<double> solve_simplex<double>(const ExpandedModel& em,
                                            const SimplexOptions& options) {
  return solve_revised_simplex(em, options);
}

template SimplexResult<num::Rational> solve_simplex<num::Rational>(
    const ExpandedModel&, const SimplexOptions&);

}  // namespace ssco::lp
