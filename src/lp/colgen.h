#pragma once
// Delayed column generation — restricted masters over an implicit model.
//
// The reduce-family LPs (core/reduce_lp.cpp, core/prefix_lp.cpp) are
// quadratic by construction: one send variable per (adjacent interval,
// edge) plus merge-task placements puts ~50k columns into an n=256 model
// whose optimum touches a few hundred of them. Column generation never
// materializes the rest. The pieces:
//
//  * the RESTRICTED MASTER is an ordinary lp::Model holding ALL rows of the
//    full model but only a seed subset of its columns (heuristic plans make
//    good seeds). Row parity is what makes the mathematics work: a master
//    solution extended with zeros is feasible for the full model, and the
//    master's duals price every absent column;
//  * the PricingOracle knows the implicit column set structurally. Each
//    round it prices absent columns against the master's duals in one
//    structured pass and returns the most violated ones;
//  * the driver (ExactSolver::solve_colgen, implemented here) appends those
//    columns to the master, the expanded model and the live revised-simplex
//    engine — which resumes primal phase 2 from its current basis: a column
//    append leaves a primal-feasible basis primal feasible, so there is no
//    phase 1 and no refactorization, just more columns to price (the
//    classic restricted-master iteration);
//  * termination is EXACT: once float pricing finds nothing, the usual
//    certificate ladder proves the restricted master optimal in rational
//    arithmetic, and one exact-rational pricing sweep over the implicit set
//    proves every never-materialized column has non-negative reduced cost.
//    Together that is a bit-exact optimality certificate for the COMPLETE
//    model — `certified == true` never means "optimal for the columns we
//    happened to look at". A sweep that does find a violated column (float
//    duals can be degenerate) appends it and re-enters the loop, so the
//    float pricing pass is an accelerator, never a correctness assumption;
//  * every inconclusive outcome (master infeasible — which proves nothing
//    about the full model, columns can restore feasibility —, stalled or
//    budget-exhausted loops, uncertifiable masters) falls back to
//    materializing the full model and running the dense ExactSolver paths.
//
// Generated columns are appended in a deterministic order (violation, then
// name) and keyed by the same names a dense build would use, so warm-start
// snapshots (lp/warm_start.h) and plan-service basis caches map exactly
// onto colgen-built models and vice versa.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lp/exact_solver.h"
#include "lp/model.h"

namespace ssco::lp {

/// One column of the implicit model, priced out by an oracle. Zero lower
/// bound, no upper bound — both load-bearing: the column enters the master
/// nonbasic at zero without disturbing primal feasibility, and no bound row
/// is materialized, so the row space (and any live basis over it) keeps its
/// dimension.
struct GeneratedColumn {
  /// Deterministic, model-unique name — the key under which warm-start
  /// snapshots keep mapping; must equal what a dense build of the full
  /// model would call this variable.
  std::string name;
  Rational objective;
  /// (model row index, coefficient), rows strictly increasing.
  std::vector<std::pair<std::size_t, Rational>> entries;
  /// Oracle-private identity, handed back verbatim through added() so the
  /// oracle can update its presence bookkeeping without parsing names.
  std::uint64_t tag = 0;
};

/// One row of the implicit model, activated lazily by the driver under row
/// generation (see PricingOracle::full_row_count): the name/sense/rhs a
/// dense build of the full model would give the row. Only zero-feasible
/// rows — satisfied when every column is zero — can be activated into a
/// live master without disturbing primal feasibility; the driver falls back
/// to the dense path on any other shape.
struct GeneratedRow {
  std::string name;
  Sense sense = Sense::kLessEqual;
  Rational rhs;
};

/// Structural description of the implicit column set. Implementations own
/// the presence bookkeeping: a column is ABSENT until the driver reports it
/// appended via added(); emitting a column from price()/price_exact() does
/// NOT mark it present (the driver may pool it for a later round).
class PricingOracle {
 public:
  virtual ~PricingOracle() = default;

  /// Columns of the FULL model, materialized or not.
  [[nodiscard]] virtual std::size_t total_columns() const = 0;

  /// Float pricing pass: appends to `out` up to `max_columns` absent
  /// columns with reduced cost (A'y - c) below -tolerance against duals
  /// `y` (one per MODEL row, SimplexResult sign convention), most violated
  /// first, ties broken deterministically by name.
  virtual void price(const std::vector<double>& y, double tolerance,
                     std::size_t max_columns,
                     std::vector<GeneratedColumn>& out) = 0;

  /// Exact pricing sweep over the same absent set: appends up to
  /// `max_columns` columns whose EXACT reduced cost is negative. Leaving
  /// `out` empty is a proof that every absent column prices non-negative —
  /// the step that extends a restricted-master certificate to the full
  /// model, so implementations must sweep the entire absent set before
  /// returning nothing.
  virtual void price_exact(const std::vector<Rational>& y,
                           std::size_t max_columns,
                           std::vector<GeneratedColumn>& out) = 0;

  /// The driver appended `column` to the master as variable `var`; treat it
  /// as present from now on.
  virtual void added(const GeneratedColumn& column, VarId var) = 0;

  /// Materializes every still-absent column — the driver's dense-fallback
  /// completion.
  virtual void materialize_all(std::vector<GeneratedColumn>& out) = 0;

  // --- Row generation (optional) ------------------------------------------
  // An oracle that also generates ROWS starts the master with only the rows
  // its seed columns touch; the driver activates further rows the moment a
  // materialized column first references them. The invariant that makes the
  // mathematics work swaps sides: instead of "the master holds every row",
  // it is "every MATERIALIZED column's support lies in active rows", so a
  // master solution still extends to the full model — by zeros over absent
  // columns AND inactive rows (each inactive row must hold at zero activity,
  // which the driver verifies before claiming a certificate) — and master
  // duals lifted with zeros at inactive rows still price every absent
  // column exactly.

  /// Rows of the FULL model. A nonzero return switches the row space of
  /// every emitted GeneratedColumn::entries (price / price_exact /
  /// materialize_all) to FULL row ids; the driver owns the full-to-master
  /// translation and passes pricing duals in full row space (zeros at
  /// inactive rows). 0 — the default — means the master holds every row and
  /// entries are master row ids.
  [[nodiscard]] virtual std::size_t full_row_count() const { return 0; }

  /// Spec of one full-model row, exactly as the dense builder would create
  /// it (names keep warm starts portable across dense and colgen builds).
  /// Only called when full_row_count() != 0.
  [[nodiscard]] virtual GeneratedRow row_spec(std::size_t full_row) const {
    (void)full_row;
    return {};
  }

  /// Full row id behind each master row of the freshly built master, in
  /// master row order — the initial activation set. build_master-style
  /// construction must have activated exactly the rows its materialized
  /// columns touch. Only called when full_row_count() != 0.
  [[nodiscard]] virtual std::vector<std::size_t> master_row_origins() const {
    return {};
  }

  /// Offers the solve's Parallel handle (lp/parallel.h) before the pricing
  /// loop starts. Implementations MAY shard their price()/price_exact()
  /// scans across it, PROVIDED the emitted column list stays bit-identical
  /// to their serial scan (deterministic shard merge); the default ignores
  /// it. The handle outlives the solve — oracles may keep a copy.
  virtual void set_parallel(const Parallel& parallel) { (void)parallel; }
};

struct ColGenOptions {
  /// Pricing rounds before giving up and materializing the full model.
  std::size_t max_rounds = 64;
  /// Columns appended to the master per round. Doubles after `stall_rounds`
  /// objective-stagnant rounds (degenerate colgen tails shrink with bigger
  /// batches), so the effective batch adapts to the instance.
  std::size_t batch = 512;
  /// Columns the oracle may emit per float pricing call; the surplus beyond
  /// `batch` feeds the driver's column pool, which repriced-and-recycles
  /// them in later rounds without another oracle scan.
  std::size_t emit = 2048;
  /// Float reduced-cost threshold for "violated". Termination never depends
  /// on it — the exact sweep has the final word at tolerance zero.
  double pricing_tolerance = 1e-7;
  /// Objective-stagnant rounds before the batch doubles.
  std::size_t stall_rounds = 4;
  /// Per-round pivot cap as a fraction of the row count (plus a constant
  /// floor), after which the round prices on the CURRENT basis's duals
  /// instead of driving the master to optimality first. Unstabilized column
  /// generation oscillates — successive restricted optima can be tens of
  /// thousands of degenerate pivots apart while better columns would
  /// short-circuit the plateau — and intermediate pricing only needs *some*
  /// dual vector, not an optimal one: optimality is only ever claimed from
  /// a round that reached the optimum AND priced clean, and the exact sweep
  /// still has the final word. 0 disables the cap. (Measured on the n=128
  /// sparse reduce: an uncapped loop burns 50k+ degenerate pivots chasing
  /// successive restricted optima; 0.25 cuts the total 6x.)
  double round_pivot_factor = 0.25;
  std::size_t round_pivot_floor = 256;
  /// Wentges dual smoothing: pricing rounds price against
  ///   y~ = stabilization * y_center + (1 - stabilization) * y,
  /// where y_center is the dual vector of the best master objective seen so
  /// far. Degenerate masters emit wildly oscillating duals round over round;
  /// smoothing towards a proven-good center keeps the generated columns
  /// relevant and cuts the tailing-off plateau. A smoothed round that prices
  /// clean is immediately re-priced at the TRUE duals (the classic misprice
  /// guard), and the exact sweep always runs at exact duals, so neither
  /// termination nor the certificate ever depends on the smoothing. 0
  /// disables.
  double stabilization = 0.8;
};

}  // namespace ssco::lp
