#pragma once
// Exact LP solving with a floating-point warm start.
//
// The paper's pipeline needs *exact rational* optimal solutions: periods are
// LCMs of solution denominators (Sec. 3.1), reduction-tree weights must
// reconstitute the solution exactly (Theorem 1), and the asymptotic-
// optimality argument compares against the exact LP value. Solving a few
// thousand-variable LP purely in rational arithmetic is slow, so we use the
// classic certify-after-float scheme (as in QSopt_ex / exact SCIP):
//
//   1. solve in double precision (fast dense two-phase simplex);
//   2. round primal and dual solutions to rationals via continued fractions
//      (num/reconstruct.h) with a growing denominator cap;
//   3. verify an exact optimality certificate: primal feasibility, dual
//      feasibility, and exact equality of the primal and dual objectives
//      (weak duality turns that equality into a proof of optimality);
//   3b. if rounding fails (degenerate vertices with huge denominators),
//      recover the exact basic solution from the final basis: solve
//      B x_B = b and B' y = c_B exactly via double-LU + exact iterative
//      refinement + rational reconstruction (lp/exact_basis.h), then verify
//      the same certificate;
//   4. on failure, fall back to the exact rational simplex.
//
// The result is bit-exact and carries a `certified` flag describing which
// path proved it.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/parallel.h"
#include "lp/simplex.h"
#include "lp/warm_start.h"

namespace ssco::lp {

/// One restricted-master round of a column-generation solve (lp/colgen.h):
/// master size when the round priced, pivots it spent, and the float
/// objective it reached — the growth curve the examples/ walkthrough plots.
struct ColGenRoundStat {
  std::size_t columns = 0;
  std::size_t pivots = 0;
  double objective = 0.0;
};

struct ExactSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Exact optimal objective value (valid when status == kOptimal).
  Rational objective;
  /// Exact optimal point in the ORIGINAL variable space of the Model.
  std::vector<Rational> primal;
  /// Exact duals per expanded row (model rows first, bound rows after);
  /// empty when the exact-simplex fallback produced the solution directly.
  std::vector<Rational> dual;
  /// True when optimality was proven by an exact primal/dual certificate or
  /// by the exact simplex itself.
  bool certified = false;
  /// "double+certificate", "double+basis-verification", "exact-simplex",
  /// or "double+exact-simplex".
  std::string method;
  std::size_t float_iterations = 0;
  std::size_t exact_iterations = 0;
  /// True when the float pass was a warm re-solve from a previous basis
  /// (lp/dual_simplex.h) instead of a cold two-phase solve.
  bool warm_started = false;
  /// Column-generation telemetry (lp/colgen.h); all zero for dense solves.
  /// `colgen_columns_total` counts the IMPLICIT full model's columns, so
  /// total - seeded - generated columns were priced out without ever being
  /// materialized.
  std::size_t colgen_rounds = 0;
  std::size_t colgen_columns_seeded = 0;
  std::size_t colgen_columns_generated = 0;
  std::size_t colgen_columns_total = 0;
  /// Row generation (lp/colgen.h): rows of the implicit full model and how
  /// many the master had activated when the loop ended. Both zero when the
  /// oracle does not generate rows (then the master always holds every row).
  std::size_t colgen_rows_active = 0;
  std::size_t colgen_rows_total = 0;
  /// Pricing rounds that priced at Wentges-smoothed duals
  /// (ColGenOptions::stabilization).
  std::size_t colgen_stab_rounds = 0;
  /// Per-round trace of the restricted master's growth (colgen solves only).
  std::vector<ColGenRoundStat> colgen_round_log;
  /// Rows/columns the exact presolve removed before the float solve
  /// (lp/presolve.h); zero when presolve was off or found nothing.
  std::size_t presolve_rows_removed = 0;
  std::size_t presolve_cols_removed = 0;
  /// FTRAN/BTRAN/pricing/factorization split of the float engine work this
  /// solve performed (warm attempt + cold pass combined).
  SolvePhaseTimes phase_times;
};

/// Carries warm-start state between consecutive solves: after a successful
/// solve the optimal basis is snapshotted into `warm` (keyed by names, so a
/// rebuilt model maps it back — lp/warm_start.h); the next solve made with
/// the same context replays it through the dual simplex. A default
/// constructed context is an empty (cold) one.
struct SolveContext {
  WarmStart warm;
  /// Per-request thread-budget override: 0 = use ExactSolverOptions::
  /// threads. The plan service sets this so that num_workers concurrent
  /// cold solves cannot oversubscribe the shared pool (each request gets
  /// roughly hardware / num_workers shards).
  std::size_t threads = 0;
  /// Telemetry of the most recent solve() made with this context.
  bool warm_attempted = false;
  bool warm_used = false;
  std::size_t cost_shifts = 0;
};

struct ExactSolverOptions {
  /// Denominator caps tried, in order, when reconstructing rationals from the
  /// double solution.
  std::vector<std::uint64_t> denominator_caps = {1u << 12, 1u << 20, 1u << 26};
  /// Reconstruction tolerance: |rounded - double| must be below this.
  double reconstruct_tolerance = 1e-6;
  /// Allow recovering the exact solution from the optimal double basis
  /// (double LU + exact iterative refinement; handles degenerate vertices
  /// whose coordinates have huge denominators).
  bool allow_basis_verification = true;
  /// Allow falling back to the exact rational simplex (can be slow on large
  /// instances but is always correct).
  bool allow_exact_fallback = true;
  /// Run the exact presolve (lp/presolve.h) before a cold float solve and
  /// certify against the REDUCED model; the lifted full-model pair is
  /// re-verified, so presolve can never cost correctness. Warm re-solves
  /// and the exact fallback always see the full model.
  bool presolve = true;
  /// Pivot budget for a warm-started float pass before giving up and going
  /// cold (0 = automatic: 2m + 100 for an m-row expanded model). A stale
  /// basis on a heavily mutated platform can cost more pivots than a cold
  /// solve; the budget bounds the downside of trying.
  std::size_t warm_pivot_budget = 0;
  /// Thread budget for the parallel column loops — certificate
  /// verification, exact basis recovery, colgen pricing sweeps
  /// (lp/parallel.h). 0 = all hardware threads, 1 = fully serial. Results
  /// are bit-identical at every setting (the fabric's determinism
  /// contract), so this is purely a wall-clock knob. Shards run on the
  /// process-wide shared pool unless `pool` overrides it.
  std::size_t threads = 0;
  /// Pool override, mainly for tests that want a private pool of a given
  /// size; null = ThreadPool::shared(). Not owned; must outlive the solver.
  ThreadPool* pool = nullptr;
  SimplexOptions simplex;
};

/// Aggregate solve telemetry, accumulated across every solve() made on one
/// ExactSolver with relaxed atomics — safe to bump from concurrent solves
/// and to read at any time (each counter is individually consistent; the
/// set is not a snapshot). Per-solve numbers live in ExactSolution.
struct SolverStats {
  std::uint64_t solves = 0;
  std::uint64_t warm_attempts = 0;
  /// Warm attempts that produced the certified answer (no cold fallback).
  std::uint64_t warm_solves = 0;
  std::uint64_t float_pivots = 0;
  std::uint64_t exact_pivots = 0;
  /// Solves that needed the exact rational simplex.
  std::uint64_t exact_fallbacks = 0;
  /// Rows/columns removed by presolve, summed over solves.
  std::uint64_t presolve_rows_removed = 0;
  std::uint64_t presolve_cols_removed = 0;
  /// Float-engine wall-clock split, summed over solves (render with
  /// io::millis): where the simplex time actually goes — FTRAN, BTRAN,
  /// pricing scans, LU refactorization.
  std::uint64_t ftran_ns = 0;
  std::uint64_t btran_ns = 0;
  std::uint64_t pricing_ns = 0;
  std::uint64_t factor_ns = 0;
  /// Exact-certification wall-clock (certificate reconstruction + basis
  /// verification), and the colgen pricing-sweep wall-clock (float rounds +
  /// the final exact sweep) — the two buckets the parallel fabric shards.
  std::uint64_t certify_ns = 0;
  std::uint64_t pricing_sweep_ns = 0;
  /// Column-generation totals (solve_colgen calls only).
  std::uint64_t colgen_solves = 0;
  std::uint64_t colgen_rounds = 0;
  std::uint64_t colgen_columns_generated = 0;
};

/// Thread-safety contract:
///  * An ExactSolver is immutable after construction apart from its atomic
///    stats block; solve() is const and re-entrant, so ONE solver may run
///    ANY number of concurrent solves (the plan service's worker pool does
///    exactly this).
///  * Each solve may itself be INTERNALLY parallel: the certificate
///    verification and pricing sweeps shard across the process-wide
///    ThreadPool (lp/parallel.h) under the solve's thread budget
///    (ExactSolverOptions::threads, overridable per request via
///    SolveContext::threads). Shards touch only solve-local state — each
///    carries its own BasisLu::Workspace and rational scratch — so
///    concurrent solves sharing the pool never share mutable data, and a
///    request's budget bounds its concurrency (the plan service budgets
///    hardware / num_workers per request so cold-solve parallelism cannot
///    oversubscribe the pool).
///  * Each concurrent solve must use its OWN SolveContext (or none) — a
///    SolveContext is the single-threaded warm-start thread of one request
///    stream, and sharing one across threads is a data race.
///  * Per-solve statistics are returned by value in ExactSolution;
///    stats() aggregates across threads with relaxed atomics.
///  * Results are BIT-IDENTICAL at every thread budget: shard boundaries
///    are deterministic and merges are ordered (exact rational partials are
///    grouping-invariant; float candidate lists merge in serial scan
///    order). See DESIGN.md "Parallel solve fabric".
struct ColGenOptions;   // lp/colgen.h
class PricingOracle;    // lp/colgen.h

class ExactSolver {
 public:
  explicit ExactSolver(ExactSolverOptions options = {})
      : options_(std::move(options)) {}

  /// Maximizes the model's objective. Throws std::runtime_error only on
  /// internal invariant violations; infeasible/unbounded models are reported
  /// through `status`.
  [[nodiscard]] ExactSolution solve(const Model& model) const;

  /// Same, threading warm-start state through `context` (may be null): a
  /// non-empty context basis warm-starts the float pass via the dual
  /// simplex, and the new optimal basis is written back on success. The
  /// certificate paths are identical to the cold solve — a warm start can
  /// cost a fallback, never a wrong answer.
  [[nodiscard]] ExactSolution solve(const Model& model,
                                    SolveContext* context) const;

  /// Delayed column generation against the implicit model the oracle
  /// describes (lp/colgen.h, defined in colgen.cpp): `master` holds the
  /// restricted master — ALL rows of the full model, a seed subset of its
  /// columns — and GROWS as pricing finds violated columns. `certified ==
  /// true` still means bit-exact optimality of the COMPLETE model: on top
  /// of the restricted certificate, one exact-rational pricing sweep proves
  /// every never-materialized column has non-negative reduced cost. Falls
  /// back to materializing the full model (correctness is never entrusted
  /// to the float pricing loop).
  [[nodiscard]] ExactSolution solve_colgen(Model& master,
                                           PricingOracle& oracle,
                                           const ColGenOptions& colgen,
                                           SolveContext* context = nullptr) const;

  /// Consistent-per-counter snapshot of the aggregate stats (see
  /// SolverStats; values only grow).
  [[nodiscard]] SolverStats stats() const;

  /// Verifies an exact primal/dual optimality certificate for the expanded
  /// model: returns true iff `x` is primal feasible, `y` is dual feasible,
  /// and c'x == b'y (all exact). Exposed for tests.
  [[nodiscard]] static bool verify_certificate(const ExpandedModel& em,
                                               const std::vector<Rational>& x,
                                               const std::vector<Rational>& y);
  /// Same, sharding the per-row feasibility checks and per-column
  /// reduced-cost checks across `parallel` (bit-identical verdict — every
  /// check is independent and the objective partials combine exactly).
  [[nodiscard]] static bool verify_certificate(const ExpandedModel& em,
                                               const std::vector<Rational>& x,
                                               const std::vector<Rational>& y,
                                               const Parallel& parallel);

  [[nodiscard]] const ExactSolverOptions& options() const { return options_; }

 private:
  [[nodiscard]] ExactSolution solve_impl(const Model& model,
                                         SolveContext* context) const;
  /// Resolves this solve's Parallel handle: the context's thread budget if
  /// set, else the options', on the injected pool or the shared one.
  [[nodiscard]] Parallel solve_parallel(const SolveContext* context) const;
  /// Folds one finished solve into the atomic stats block (shared by
  /// solve() and solve_colgen()).
  void record_solve(const ExactSolution& solution,
                    const SolveContext* context) const;

  ExactSolverOptions options_;
  struct AtomicStats {
    std::atomic<std::uint64_t> solves{0};
    std::atomic<std::uint64_t> warm_attempts{0};
    std::atomic<std::uint64_t> warm_solves{0};
    std::atomic<std::uint64_t> float_pivots{0};
    std::atomic<std::uint64_t> exact_pivots{0};
    std::atomic<std::uint64_t> exact_fallbacks{0};
    std::atomic<std::uint64_t> presolve_rows_removed{0};
    std::atomic<std::uint64_t> presolve_cols_removed{0};
    std::atomic<std::uint64_t> ftran_ns{0};
    std::atomic<std::uint64_t> btran_ns{0};
    std::atomic<std::uint64_t> pricing_ns{0};
    std::atomic<std::uint64_t> factor_ns{0};
    std::atomic<std::uint64_t> certify_ns{0};
    std::atomic<std::uint64_t> pricing_sweep_ns{0};
    std::atomic<std::uint64_t> colgen_solves{0};
    std::atomic<std::uint64_t> colgen_rounds{0};
    std::atomic<std::uint64_t> colgen_columns_generated{0};
  };
  mutable AtomicStats stats_;
};

/// Runs the exact certification ladder — rational reconstruction of the
/// float primal/dual pair at the configured denominator caps, then exact
/// recovery from the optimal basis (lp/exact_basis.h) — on a float-OPTIMAL
/// SimplexResult for `em`. On success fills `out`'s status / objective /
/// primal (original variable space) / dual / certified / method and
/// returns true; `out` is untouched on failure. Shared by ExactSolver's
/// cold, warm and column-generation paths.
[[nodiscard]] bool certify_float_result(const ExpandedModel& em,
                                        const SimplexResult<double>& fp,
                                        const ExactSolverOptions& options,
                                        ExactSolution& out,
                                        const Parallel& parallel = {});

/// Convenience: solve `model` purely with the exact rational simplex
/// (no floating-point involved). Used as ground truth in tests.
[[nodiscard]] ExactSolution solve_exact_simplex(const Model& model,
                                                const SimplexOptions& options = {});

}  // namespace ssco::lp
