#pragma once
// Exact LP solving with a floating-point warm start.
//
// The paper's pipeline needs *exact rational* optimal solutions: periods are
// LCMs of solution denominators (Sec. 3.1), reduction-tree weights must
// reconstitute the solution exactly (Theorem 1), and the asymptotic-
// optimality argument compares against the exact LP value. Solving a few
// thousand-variable LP purely in rational arithmetic is slow, so we use the
// classic certify-after-float scheme (as in QSopt_ex / exact SCIP):
//
//   1. solve in double precision (fast dense two-phase simplex);
//   2. round primal and dual solutions to rationals via continued fractions
//      (num/reconstruct.h) with a growing denominator cap;
//   3. verify an exact optimality certificate: primal feasibility, dual
//      feasibility, and exact equality of the primal and dual objectives
//      (weak duality turns that equality into a proof of optimality);
//   3b. if rounding fails (degenerate vertices with huge denominators),
//      recover the exact basic solution from the final basis: solve
//      B x_B = b and B' y = c_B exactly via double-LU + exact iterative
//      refinement + rational reconstruction (lp/exact_basis.h), then verify
//      the same certificate;
//   4. on failure, fall back to the exact rational simplex.
//
// The result is bit-exact and carries a `certified` flag describing which
// path proved it.

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace ssco::lp {

struct ExactSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Exact optimal objective value (valid when status == kOptimal).
  Rational objective;
  /// Exact optimal point in the ORIGINAL variable space of the Model.
  std::vector<Rational> primal;
  /// Exact duals per expanded row (model rows first, bound rows after);
  /// empty when the exact-simplex fallback produced the solution directly.
  std::vector<Rational> dual;
  /// True when optimality was proven by an exact primal/dual certificate or
  /// by the exact simplex itself.
  bool certified = false;
  /// "double+certificate", "double+basis-verification", "exact-simplex",
  /// or "double+exact-simplex".
  std::string method;
  std::size_t float_iterations = 0;
  std::size_t exact_iterations = 0;
};

struct ExactSolverOptions {
  /// Denominator caps tried, in order, when reconstructing rationals from the
  /// double solution.
  std::vector<std::uint64_t> denominator_caps = {1u << 12, 1u << 20, 1u << 26};
  /// Reconstruction tolerance: |rounded - double| must be below this.
  double reconstruct_tolerance = 1e-6;
  /// Allow recovering the exact solution from the optimal double basis
  /// (double LU + exact iterative refinement; handles degenerate vertices
  /// whose coordinates have huge denominators).
  bool allow_basis_verification = true;
  /// Allow falling back to the exact rational simplex (can be slow on large
  /// instances but is always correct).
  bool allow_exact_fallback = true;
  SimplexOptions simplex;
};

class ExactSolver {
 public:
  explicit ExactSolver(ExactSolverOptions options = {})
      : options_(std::move(options)) {}

  /// Maximizes the model's objective. Throws std::runtime_error only on
  /// internal invariant violations; infeasible/unbounded models are reported
  /// through `status`.
  [[nodiscard]] ExactSolution solve(const Model& model) const;

  /// Verifies an exact primal/dual optimality certificate for the expanded
  /// model: returns true iff `x` is primal feasible, `y` is dual feasible,
  /// and c'x == b'y (all exact). Exposed for tests.
  [[nodiscard]] static bool verify_certificate(const ExpandedModel& em,
                                               const std::vector<Rational>& x,
                                               const std::vector<Rational>& y);

 private:
  ExactSolverOptions options_;
};

/// Convenience: solve `model` purely with the exact rational simplex
/// (no floating-point involved). Used as ground truth in tests.
[[nodiscard]] ExactSolution solve_exact_simplex(const Model& model,
                                                const SimplexOptions& options = {});

}  // namespace ssco::lp
