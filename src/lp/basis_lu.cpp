#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>

namespace ssco::lp {

namespace {

/// Threshold-pivoting relaxation used with the fill-reducing preorder: any
/// row within this factor of the column's largest magnitude is numerically
/// acceptable, freeing the Markowitz rule to pick the sparsest. 0.1 is the
/// classical default (Reid); growth is bounded by 1/0.1 per step and the
/// engines refactorize and certify against exact arithmetic anyway.
constexpr double kMarkowitzThreshold = 0.1;

/// Per-thread scratch of factor(), reused across refactorizations: the
/// simplex engines refactorize every few dozen pivots, and with the
/// preorder keeping elimination cheap the ~20 per-call allocations (and
/// their page faults) were a measurable share of refactorization cost.
/// thread_local because parallel certification factors concurrently.
/// Everything is 32-bit: the peel and the symbolic elimination are bound by
/// random access into these arrays, so halving their footprint is a direct
/// cache win (basis dimensions stay far below 2^31 — see BasisLu::Index).
struct FactorScratch {
  std::vector<std::int32_t> ccount, rstart, rfill, rcount, rdeg, pivoted_at,
      touched, reach, stack, rcols, front, back, cq, rq, bump, order, ufill,
      lfill;
  std::vector<char> col_done, row_done, marked;
  std::vector<double> x;
};

FactorScratch& factor_scratch() {
  static thread_local FactorScratch s;
  return s;
}

}  // namespace

std::optional<BasisLu> BasisLu::factor(const CscMatrix& A,
                                       const std::vector<std::size_t>& columns,
                                       const Options& options) {
  const std::size_t m = A.num_rows();
  if (columns.size() != m) return std::nullopt;

  BasisLu lu;
  lu.options_ = options;
  FactorScratch& fs = factor_scratch();
  // Remaining-pattern row degrees for threshold-Markowitz pivoting; empty
  // (and the pivot rule untouched) unless fill_preorder is on.
  std::vector<Index>& rdeg = fs.rdeg;
  rdeg.clear();
  // Nonzeros of the selected basis columns — the natural reserve for the
  // factor arenas (fill typically lands within ~1.5x of it; a rare overflow
  // just regrows the arena). Reserving by the FULL matrix nnz instead paid
  // allocator and paging cost for the master's entire column pool on every
  // refactorization.
  std::size_t basis_nnz = 0;
  for (std::size_t p = 0; p < m; ++p) {
    basis_nnz +=
        static_cast<std::size_t>(A.col_end(columns[p]) - A.col_begin(columns[p]));
  }
  // Static fill-reducing preorder (see Options::fill_preorder): eliminate in
  // ascending column-nonzero order. pos_of_step stays EMPTY for the identity
  // order so the solve paths keep their no-permute fast path.
  if (options.fill_preorder) {
    // Tomlin-style static triangularization of the basis pattern. Peel
    // column singletons (one entry in a still-active row) to the FRONT —
    // each eliminates with that lone row as pivot, empty L column, zero
    // fill — and row singletons (one active column touches the row) to the
    // BACK, iterating both to closure since every peel can expose new
    // singletons. What survives is the irreducible "bump", ordered by
    // ascending remaining count; ALL fill is confined to it. Steady-state
    // basis matrices are almost entirely triangularizable, so the bump —
    // and with it the factor fill — is a small fraction of m.
    std::vector<Index>& ccount = fs.ccount;
    std::vector<Index>& rstart = fs.rstart;
    ccount.resize(m);
    rstart.assign(m + 1, 0);
    for (std::size_t p = 0; p < m; ++p) {
      const auto* b = A.col_begin(columns[p]);
      const auto* e = A.col_end(columns[p]);
      ccount[p] = static_cast<Index>(e - b);
      for (const auto* it = b; it != e; ++it) ++rstart[it->row + 1];
    }
    for (std::size_t r = 0; r < m; ++r) rstart[r + 1] += rstart[r];
    std::vector<Index>& rcols = fs.rcols;
    rcols.resize(basis_nnz);
    {
      std::vector<Index>& fill = fs.rfill;
      fill.assign(rstart.begin(), rstart.end() - 1);
      for (std::size_t p = 0; p < m; ++p) {
        for (const auto* it = A.col_begin(columns[p]);
             it != A.col_end(columns[p]); ++it) {
          rcols[fill[it->row]++] = static_cast<Index>(p);
        }
      }
    }
    std::vector<Index>& rcount = fs.rcount;
    rcount.resize(m);
    for (std::size_t r = 0; r < m; ++r) rcount[r] = rstart[r + 1] - rstart[r];
    rdeg.assign(rcount.begin(), rcount.end());
    std::vector<char>& col_done = fs.col_done;
    std::vector<char>& row_done = fs.row_done;
    col_done.assign(m, 0);
    row_done.assign(m, 0);
    std::vector<Index>& front = fs.front;
    std::vector<Index>& back = fs.back;
    std::vector<Index>& cq = fs.cq;
    std::vector<Index>& rq = fs.rq;
    front.clear();
    back.clear();
    cq.clear();
    rq.clear();
    for (std::size_t p = 0; p < m; ++p) {
      if (ccount[p] == 1) cq.push_back(static_cast<Index>(p));
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (rcount[r] == 1) rq.push_back(static_cast<Index>(r));
    }
    // Drops column p and row r from the active pattern, updating counts and
    // enqueueing any singleton either removal exposes.
    const auto retire = [&](std::size_t p, std::size_t r) {
      col_done[p] = 1;
      row_done[r] = 1;
      for (Index t = rstart[r]; t < rstart[r + 1]; ++t) {
        const auto q = static_cast<std::size_t>(rcols[t]);
        if (!col_done[q] && --ccount[q] == 1) {
          cq.push_back(static_cast<Index>(q));
        }
      }
      for (const auto* it = A.col_begin(columns[p]);
           it != A.col_end(columns[p]); ++it) {
        if (!row_done[it->row] && --rcount[it->row] == 1) {
          rq.push_back(static_cast<Index>(it->row));
        }
      }
    };
    while (!cq.empty() || !rq.empty()) {
      if (!cq.empty()) {
        const auto p = static_cast<std::size_t>(cq.back());
        cq.pop_back();
        if (col_done[p] || ccount[p] != 1) continue;  // stale queue entry
        for (const auto* it = A.col_begin(columns[p]);
             it != A.col_end(columns[p]); ++it) {
          if (!row_done[it->row]) {
            front.push_back(static_cast<Index>(p));
            retire(p, it->row);
            break;
          }
        }
      } else {
        const auto r = static_cast<std::size_t>(rq.back());
        rq.pop_back();
        if (row_done[r] || rcount[r] != 1) continue;
        for (Index t = rstart[r]; t < rstart[r + 1]; ++t) {
          const auto q = static_cast<std::size_t>(rcols[t]);
          if (!col_done[q]) {
            back.push_back(static_cast<Index>(q));
            retire(q, r);
            break;
          }
        }
      }
    }
    std::vector<Index>& bump = fs.bump;
    bump.clear();
    for (std::size_t p = 0; p < m; ++p) {
      if (!col_done[p]) bump.push_back(static_cast<Index>(p));
    }
    std::stable_sort(bump.begin(), bump.end(), [&](Index a, Index b) {
      return ccount[static_cast<std::size_t>(a)] <
             ccount[static_cast<std::size_t>(b)];
    });
    std::vector<Index>& order = fs.order;
    order.assign(front.begin(), front.end());
    order.insert(order.end(), bump.begin(), bump.end());
    order.insert(order.end(), back.rbegin(), back.rend());
    bool identity = true;
    for (std::size_t k = 0; k < m; ++k) {
      if (order[k] != static_cast<Index>(k)) {
        identity = false;
        break;
      }
    }
    if (!identity) lu.pos_of_step_.assign(order.begin(), order.end());
  }
  lu.pivot_row_.assign(m, 0);
  lu.l_start_.assign(1, 0);
  lu.u_start_.assign(1, 0);
  lu.l_start_.reserve(m + 1);
  lu.u_start_.reserve(m + 1);
  lu.l_idx_.reserve(basis_nnz);
  lu.l_val_.reserve(basis_nnz);
  lu.u_idx_.reserve(basis_nnz);
  lu.u_val_.reserve(basis_nnz);
  lu.diag_.assign(m, 0.0);

  // pivoted_at[i] = elimination step that chose row i, or -1 if still free.
  std::vector<Index>& pivoted_at = fs.pivoted_at;
  pivoted_at.assign(m, -1);
  std::vector<double>& x = fs.x;
  x.assign(m, 0.0);
  std::vector<Index>& touched = fs.touched;
  touched.clear();
  touched.reserve(m);
  // Gilbert–Peierls symbolic scratch: the steps whose pivot rows the working
  // column can reach through the L pattern (marked[] is the visited stamp,
  // reach the collected set, stack the DFS worklist). Reach size is the
  // column's fill, so the per-column cost tracks nnz instead of k.
  std::vector<char>& marked = fs.marked;
  marked.assign(m, 0);
  std::vector<Index>& reach = fs.reach;
  std::vector<Index>& stack = fs.stack;
  reach.clear();
  stack.clear();

  for (std::size_t k = 0; k < m; ++k) {
    // Basis position eliminated at this step (identity unless preordered).
    const std::size_t pos =
        lu.pos_of_step_.empty() ? k : static_cast<std::size_t>(lu.pos_of_step_[k]);
    // x = the basis column at `pos`, scattered dense; seed the symbolic DFS
    // with every scattered row that is already pivoted.
    for (const CscMatrix::Entry* e = A.col_begin(columns[pos]);
         e != A.col_end(columns[pos]); ++e) {
      x[e->row] = e->value;
      touched.push_back(static_cast<Index>(e->row));
      const Index p = pivoted_at[e->row];
      if (p >= 0 && !marked[p]) {
        marked[p] = 1;
        stack.push_back(p);
        // Depth-first closure over the L pattern: an update from step s can
        // only write rows in L's column s, whose pivot steps are strictly
        // LATER than s — so the reach set is exactly the candidate steps the
        // old dense/bitset probe would have visited, found in O(|reach| +
        // pattern edges) instead of O(k).
        while (!stack.empty()) {
          const Index s = stack.back();
          stack.pop_back();
          reach.push_back(s);
          const std::size_t lend = lu.l_start_[s + 1];
          for (std::size_t t = lu.l_start_[s]; t < lend; ++t) {
            const Index q = pivoted_at[static_cast<std::size_t>(lu.l_idx_[t])];
            if (q >= 0 && !marked[q]) {
              marked[q] = 1;
              stack.push_back(q);
            }
          }
        }
      }
    }
    // Ascending step order IS a topological order of the reach DAG (edges
    // only point to later steps), and it is the exact order the previous
    // probe loop visited contributing steps in — so the numeric update pass
    // below performs the SAME floating-point operations in the SAME order,
    // including the xp == 0.0 skip of entries that cancelled numerically.
    std::sort(reach.begin(), reach.end());
    for (const Index j : reach) {
      marked[j] = 0;
      const double xp = x[lu.pivot_row_[j]];
      if (xp == 0.0) continue;
      const std::size_t lend = lu.l_start_[j + 1];
      for (std::size_t t = lu.l_start_[j]; t < lend; ++t) {
        const auto row = static_cast<std::size_t>(lu.l_idx_[t]);
        if (x[row] == 0.0) touched.push_back(static_cast<Index>(row));
        x[row] -= lu.l_val_[t] * xp;
      }
    }
    reach.clear();
    // Pivot choice over the rows not yet chosen, in touch order.
    Index pivot = -1;
    double best = 0.0;
    if (rdeg.empty()) {
      // Legacy partial pivoting: strictly largest magnitude — the tie-break
      // order the old accumulator used, preserved so degenerate models land
      // on the identical vertex.
      for (const Index row : touched) {
        if (pivoted_at[row] >= 0) continue;
        const double mag = std::fabs(x[row]);
        if (mag > best) {
          best = mag;
          pivot = row;
        }
      }
    } else {
      // Threshold-Markowitz (fill_preorder only): among the numerically
      // acceptable rows — within kMarkowitzThreshold of the largest
      // magnitude — pick the one that appears in the FEWEST remaining
      // columns. The L column's length is fixed by the touched set, but the
      // pivot row seeds the update DFS of every future column containing
      // it, so a low-degree pivot row keeps fill out of the columns still
      // to come; ties go to the larger magnitude (stability).
      for (const Index row : touched) {
        if (pivoted_at[row] >= 0) continue;
        const double mag = std::fabs(x[row]);
        if (mag > best) best = mag;
      }
      const double floor_mag = kMarkowitzThreshold * best;
      Index best_deg = 0;
      double best_mag = 0.0;
      for (const Index row : touched) {
        if (pivoted_at[row] >= 0) continue;
        const double mag = std::fabs(x[row]);
        if (mag < floor_mag) continue;
        const Index deg = rdeg[row];
        if (pivot < 0 || deg < best_deg ||
            (deg == best_deg && mag > best_mag)) {
          pivot = row;
          best_deg = deg;
          best_mag = mag;
        }
      }
    }
    if (pivot < 0 || best < options.pivot_tolerance) return std::nullopt;

    lu.pivot_row_[k] = static_cast<std::size_t>(pivot);
    pivoted_at[pivot] = static_cast<Index>(k);
    const double dk = x[pivot];
    lu.diag_[k] = dk;
    for (const Index row : touched) {
      const double v = x[row];
      x[row] = 0.0;  // reset the accumulator as we drain it
      const Index p = pivoted_at[row];
      if (row == pivot || std::fabs(v) <= options.drop_tolerance) continue;
      if (p >= 0) {
        lu.u_idx_.push_back(p);
        lu.u_val_.push_back(v);
      } else {
        lu.l_idx_.push_back(row);
        lu.l_val_.push_back(v / dk);
      }
    }
    lu.l_start_.push_back(lu.l_idx_.size());
    lu.u_start_.push_back(lu.u_idx_.size());
    touched.clear();
    if (!rdeg.empty()) {
      // This column leaves the remaining pattern: drop its original entries
      // from the Markowitz row degrees.
      for (const CscMatrix::Entry* e = A.col_begin(columns[pos]);
           e != A.col_end(columns[pos]); ++e) {
        --rdeg[e->row];
      }
    }
  }
  lu.factor_nnz_ = m + lu.l_idx_.size() + lu.u_idx_.size();

  // Transposed mirrors for the push-form BTRAN solves, by counting sort —
  // entries of row j (ur) / original row r (ltrans) end up ordered by
  // elimination step, exactly the order the old per-row push lists held.
  lu.ur_start_.assign(m + 1, 0);
  for (const Index pos : lu.u_idx_) ++lu.ur_start_[pos + 1];
  for (std::size_t i = 0; i < m; ++i) lu.ur_start_[i + 1] += lu.ur_start_[i];
  lu.ur_idx_.resize(lu.u_idx_.size());
  lu.ur_val_.resize(lu.u_idx_.size());
  lu.lt_start_.assign(m + 1, 0);
  for (const Index row : lu.l_idx_) ++lu.lt_start_[row + 1];
  for (std::size_t i = 0; i < m; ++i) lu.lt_start_[i + 1] += lu.lt_start_[i];
  lu.lt_idx_.resize(lu.l_idx_.size());
  lu.lt_val_.resize(lu.l_idx_.size());
  {
    std::vector<Index>& ufill = fs.ufill;
    std::vector<Index>& lfill = fs.lfill;
    ufill.assign(lu.ur_start_.begin(), lu.ur_start_.end() - 1);
    lfill.assign(lu.lt_start_.begin(), lu.lt_start_.end() - 1);
    for (std::size_t k = 0; k < m; ++k) {
      for (std::size_t t = lu.u_start_[k]; t < lu.u_start_[k + 1]; ++t) {
        const std::size_t at = ufill[lu.u_idx_[t]]++;
        lu.ur_idx_[at] = static_cast<Index>(k);
        lu.ur_val_[at] = lu.u_val_[t];
      }
      for (std::size_t t = lu.l_start_[k]; t < lu.l_start_[k + 1]; ++t) {
        const std::size_t at = lfill[lu.l_idx_[t]]++;
        lu.lt_idx_[at] = static_cast<Index>(lu.pivot_row_[k]);
        lu.lt_val_[at] = lu.l_val_[t];
      }
    }
  }
  return lu;
}

std::size_t BasisLu::append_identity_row() {
  // The extended basis is block-diagonal [[B, 0], [0, 1]]: no existing basis
  // column touches the new row and the new column is the unit vector on it,
  // so the factorization extends by one trivial elimination step — pivot at
  // the new row, diagonal 1, empty L and U columns — without touching any
  // existing factor or eta entry (all their indices stay valid).
  const std::size_t row = dim();
  // Under a fill-reducing preorder the new step eliminates the new position.
  if (!pos_of_step_.empty()) pos_of_step_.push_back(static_cast<Index>(row));
  pivot_row_.push_back(row);
  l_start_.push_back(l_idx_.size());
  u_start_.push_back(u_idx_.size());
  diag_.push_back(1.0);
  // Transposed mirrors: the new position has no U row entries and the new
  // original row no L-transpose entries, so both offset tables just repeat
  // their last offset.
  ur_start_.push_back(ur_start_.back());
  lt_start_.push_back(lt_start_.back());
  factor_nnz_ += 1;
  return row;
}

void BasisLu::ftran(std::vector<double>& x, Workspace& ws) const {
  const std::size_t m = dim();
  // Apply L^-1 (row space).
  {
    const Index* const idx = l_idx_.data();
    const double* const val = l_val_.data();
    for (std::size_t k = 0; k < m; ++k) {
      const double xp = x[pivot_row_[k]];
      if (xp == 0.0) continue;
      const std::size_t end = l_start_[k + 1];
      for (std::size_t t = l_start_[k]; t < end; ++t) {
        x[idx[t]] -= val[t] * xp;
      }
    }
  }
  // Permute into position space, then backsolve U.
  std::vector<double>& y = ws.scratch;
  y.resize(m);
  for (std::size_t k = 0; k < m; ++k) y[k] = x[pivot_row_[k]];
  {
    const Index* const idx = u_idx_.data();
    const double* const val = u_val_.data();
    for (std::size_t k = m; k-- > 0;) {
      const double t = y[k] / diag_[k];
      y[k] = t;
      if (t == 0.0) continue;
      const std::size_t end = u_start_[k + 1];
      for (std::size_t tt = u_start_[k]; tt < end; ++tt) {
        y[idx[tt]] -= val[tt] * t;
      }
    }
  }
  // y is in STEP space; under a preorder (pos_of_step_ non-empty) scatter it
  // into position space — the permutation covers every index, so x is fully
  // overwritten. Identity order keeps the allocation-free swap.
  if (pos_of_step_.empty()) {
    x.swap(y);
  } else {
    for (std::size_t k = 0; k < m; ++k) {
      x[static_cast<std::size_t>(pos_of_step_[k])] = y[k];
    }
  }
  // Product-form updates, oldest first.
  {
    const Index* const idx = eta_idx_.data();
    const double* const val = eta_val_.data();
    for (std::size_t e = 0; e < eta_r_.size(); ++e) {
      const auto r = static_cast<std::size_t>(eta_r_[e]);
      const double t = x[r] / eta_pivot_[e];
      x[r] = t;
      if (t == 0.0) continue;
      const std::size_t end = eta_start_[e + 1];
      for (std::size_t tt = eta_start_[e]; tt < end; ++tt) {
        x[idx[tt]] -= val[tt] * t;
      }
    }
  }
}

void BasisLu::btran(std::vector<double>& x, Workspace& ws) const {
  const std::size_t m = dim();
  // Transposed eta file, newest first: each eta contributes a gather dot
  // product. Accumulation stays in strict term order — NOT unrolled into
  // independent accumulators — because reassociating it perturbs the pivot
  // path and thereby which optimal VERTEX degenerate models land on;
  // downstream consumers (tree extraction, schedules) are vertex-sensitive
  // even though the objective is not. The SoA layout still pipelines the
  // index/value streams.
  {
    const Index* const idx = eta_idx_.data();
    const double* const val = eta_val_.data();
    for (std::size_t e = eta_r_.size(); e-- > 0;) {
      const std::size_t end = eta_start_[e + 1];
      double t = x[eta_r_[e]];
      for (std::size_t tt = eta_start_[e]; tt < end; ++tt) {
        t -= val[tt] * x[idx[tt]];
      }
      x[eta_r_[e]] = t / eta_pivot_[e];
    }
  }
  // Forward solve U' w = c, PUSH form: once w_k is final its contributions
  // scatter along row k of U, and a zero w_k — the overwhelmingly common
  // case for the near-singleton vectors the simplex prices with — costs
  // nothing. U is indexed by STEP; under a preorder the position-space input
  // is first gathered into step space (ws.scratch2), the identity order
  // solves in x directly.
  std::vector<double>* w = &x;
  if (!pos_of_step_.empty()) {
    ws.scratch2.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      ws.scratch2[k] = x[static_cast<std::size_t>(pos_of_step_[k])];
    }
    w = &ws.scratch2;
  }
  {
    double* const wv = w->data();
    const Index* const idx = ur_idx_.data();
    const double* const val = ur_val_.data();
    for (std::size_t k = 0; k < m; ++k) {
      const double t = wv[k];
      if (t == 0.0) continue;
      const double wk = t / diag_[k];
      wv[k] = wk;
      const std::size_t end = ur_start_[k + 1];
      for (std::size_t tt = ur_start_[k]; tt < end; ++tt) {
        wv[idx[tt]] -= val[tt] * wk;
      }
    }
  }
  // Permute back to row space and apply L^-T, newest elimination step
  // first, again in push form: y[pivot_row_[k]] is final when step k runs
  // (ltrans only targets earlier elimination steps).
  std::vector<double>& y = ws.scratch;
  y.assign(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) y[pivot_row_[k]] = (*w)[k];
  {
    const Index* const idx = lt_idx_.data();
    const double* const val = lt_val_.data();
    for (std::size_t k = m; k-- > 0;) {
      const std::size_t row = pivot_row_[k];
      const double z = y[row];
      if (z == 0.0) continue;
      const std::size_t end = lt_start_[row + 1];
      for (std::size_t tt = lt_start_[row]; tt < end; ++tt) {
        y[idx[tt]] -= val[tt] * z;
      }
    }
  }
  x.swap(y);
}

bool BasisLu::update(std::size_t r, const std::vector<double>& w) {
  const double pivot = w[r];
  if (std::fabs(pivot) < options_.pivot_tolerance) return false;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != r && std::fabs(w[i]) > options_.drop_tolerance) {
      eta_idx_.push_back(static_cast<Index>(i));
      eta_val_.push_back(w[i]);
    }
  }
  eta_nnz_ += eta_idx_.size() - eta_start_.back() + 1;
  eta_start_.push_back(eta_idx_.size());
  eta_r_.push_back(static_cast<Index>(r));
  eta_pivot_.push_back(pivot);
  return true;
}

}  // namespace ssco::lp
