#include "lp/basis_lu.h"

#include <cmath>

namespace ssco::lp {

std::optional<BasisLu> BasisLu::factor(const CscMatrix& A,
                                       const std::vector<std::size_t>& columns,
                                       const Options& options) {
  const std::size_t m = A.num_rows();
  if (columns.size() != m) return std::nullopt;

  BasisLu lu;
  lu.options_ = options;
  lu.pivot_row_.assign(m, 0);
  lu.lower_.resize(m);
  lu.upper_.resize(m);
  lu.diag_.assign(m, 0.0);

  // pivoted_at[i] = elimination step that chose row i, or m if still free.
  std::vector<std::size_t> pivoted_at(m, m);
  std::vector<double> x(m, 0.0);
  std::vector<std::size_t> touched;
  touched.reserve(m);

  for (std::size_t k = 0; k < m; ++k) {
    // x = column k of B, scattered dense.
    for (const CscMatrix::Entry* e = A.col_begin(columns[k]);
         e != A.col_end(columns[k]); ++e) {
      x[e->row] = e->value;
      touched.push_back(e->row);
    }
    // Left-looking solve L x' = x against the already-built columns, in
    // elimination order.
    for (std::size_t j = 0; j < k; ++j) {
      const double xp = x[lu.pivot_row_[j]];
      if (xp == 0.0) continue;
      for (const auto& [row, l] : lu.lower_[j]) {
        if (x[row] == 0.0) touched.push_back(row);
        x[row] -= l * xp;
      }
    }
    // Partial pivoting over the rows not yet chosen.
    std::size_t pivot = m;
    double best = 0.0;
    for (std::size_t row : touched) {
      if (pivoted_at[row] != m) continue;
      const double mag = std::fabs(x[row]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (pivot == m || best < options.pivot_tolerance) return std::nullopt;

    lu.pivot_row_[k] = pivot;
    pivoted_at[pivot] = k;
    const double dk = x[pivot];
    lu.diag_[k] = dk;
    auto& ucol = lu.upper_[k];
    auto& lcol = lu.lower_[k];
    for (std::size_t row : touched) {
      const double v = x[row];
      x[row] = 0.0;  // reset the accumulator as we drain it
      if (row == pivot || std::fabs(v) <= options.drop_tolerance) continue;
      if (pivoted_at[row] != m) {
        ucol.emplace_back(pivoted_at[row], v);
      } else {
        lcol.emplace_back(row, v / dk);
      }
    }
    touched.clear();
  }
  lu.factor_nnz_ = m;  // the diagonal
  for (std::size_t k = 0; k < m; ++k) {
    lu.factor_nnz_ += lu.lower_[k].size() + lu.upper_[k].size();
  }
  // Transposed mirrors for the push-form BTRAN solves.
  lu.urows_.assign(m, {});
  lu.ltrans_.assign(m, {});
  for (std::size_t k = 0; k < m; ++k) {
    for (const auto& [pos, u] : lu.upper_[k]) {
      lu.urows_[pos].emplace_back(k, u);
    }
    for (const auto& [row, l] : lu.lower_[k]) {
      lu.ltrans_[row].emplace_back(lu.pivot_row_[k], l);
    }
  }
  return lu;
}

void BasisLu::ftran(std::vector<double>& x, Workspace& ws) const {
  const std::size_t m = dim();
  // Apply L^-1 (row space).
  for (std::size_t k = 0; k < m; ++k) {
    const double xp = x[pivot_row_[k]];
    if (xp == 0.0) continue;
    for (const auto& [row, l] : lower_[k]) x[row] -= l * xp;
  }
  // Permute into position space, then backsolve U.
  std::vector<double>& y = ws.scratch;
  y.resize(m);
  for (std::size_t k = 0; k < m; ++k) y[k] = x[pivot_row_[k]];
  for (std::size_t k = m; k-- > 0;) {
    const double t = y[k] / diag_[k];
    y[k] = t;
    if (t == 0.0) continue;
    for (const auto& [pos, u] : upper_[k]) y[pos] -= u * t;
  }
  x.swap(y);
  // Product-form updates, oldest first.
  for (const Eta& eta : etas_) {
    const double t = x[eta.r] / eta.pivot;
    x[eta.r] = t;
    if (t == 0.0) continue;
    for (const auto& [pos, w] : eta.terms) x[pos] -= w * t;
  }
}

void BasisLu::btran(std::vector<double>& x, Workspace& ws) const {
  const std::size_t m = dim();
  // Transposed eta file, newest first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double t = x[it->r];
    for (const auto& [pos, w] : it->terms) t -= w * x[pos];
    x[it->r] = t / it->pivot;
  }
  // Forward solve U' w = c in position space, PUSH form: once w_k is final
  // its contributions scatter along row k of U, and a zero w_k — the
  // overwhelmingly common case for the near-singleton vectors the simplex
  // prices with — costs nothing.
  for (std::size_t k = 0; k < m; ++k) {
    const double t = x[k];
    if (t == 0.0) continue;
    const double wk = t / diag_[k];
    x[k] = wk;
    for (const auto& [pos, u] : urows_[k]) x[pos] -= u * wk;
  }
  // Permute back to row space and apply L^-T, newest elimination step
  // first, again in push form: y[pivot_row_[k]] is final when step k runs
  // (ltrans_ only targets earlier elimination steps).
  std::vector<double>& y = ws.scratch;
  y.assign(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) y[pivot_row_[k]] = x[k];
  for (std::size_t k = m; k-- > 0;) {
    const double z = y[pivot_row_[k]];
    if (z == 0.0) continue;
    for (const auto& [target, l] : ltrans_[pivot_row_[k]]) {
      y[target] -= l * z;
    }
  }
  x.swap(y);
}

bool BasisLu::update(std::size_t r, const std::vector<double>& w) {
  const double pivot = w[r];
  if (std::fabs(pivot) < options_.pivot_tolerance) return false;
  Eta eta;
  eta.r = r;
  eta.pivot = pivot;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != r && std::fabs(w[i]) > options_.drop_tolerance) {
      eta.terms.emplace_back(i, w[i]);
    }
  }
  eta_nnz_ += eta.terms.size() + 1;
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace ssco::lp
