#include "lp/basis_lu.h"

#include <bit>
#include <cmath>

namespace ssco::lp {

namespace {

inline void set_bit(std::vector<std::uint64_t>& bits, std::size_t i) {
  bits[i >> 6] |= std::uint64_t{1} << (i & 63);
}

inline void clear_bit(std::vector<std::uint64_t>& bits, std::size_t i) {
  bits[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
}

}  // namespace

std::optional<BasisLu> BasisLu::factor(const CscMatrix& A,
                                       const std::vector<std::size_t>& columns,
                                       const Options& options) {
  const std::size_t m = A.num_rows();
  if (columns.size() != m) return std::nullopt;

  BasisLu lu;
  lu.options_ = options;
  lu.pivot_row_.assign(m, 0);
  lu.l_start_.assign(1, 0);
  lu.u_start_.assign(1, 0);
  lu.l_start_.reserve(m + 1);
  lu.u_start_.reserve(m + 1);
  lu.l_idx_.reserve(A.num_nonzeros());
  lu.l_val_.reserve(A.num_nonzeros());
  lu.u_idx_.reserve(A.num_nonzeros());
  lu.u_val_.reserve(A.num_nonzeros());
  lu.diag_.assign(m, 0.0);

  // pivoted_at[i] = elimination step that chose row i, or m if still free.
  std::vector<std::size_t> pivoted_at(m, m);
  std::vector<double> x(m, 0.0);
  std::vector<std::size_t> touched;
  touched.reserve(m);
  // live[j] set <=> x[pivot_row_[j]] may be nonzero: the only steps the
  // left-looking probe loop below has to visit. Maintained alongside every
  // write into x (scatter and elimination updates both set it; the
  // end-of-column drain clears it), so the probe walks set bits instead of
  // all k prior steps — same float operations, same order, O(k/64) scan.
  std::vector<std::uint64_t> live((m + 64) / 64, 0);

  for (std::size_t k = 0; k < m; ++k) {
    // x = column k of B, scattered dense.
    for (const CscMatrix::Entry* e = A.col_begin(columns[k]);
         e != A.col_end(columns[k]); ++e) {
      x[e->row] = e->value;
      touched.push_back(e->row);
      if (pivoted_at[e->row] != m) set_bit(live, pivoted_at[e->row]);
    }
    // Left-looking solve L x' = x against the already-built columns, in
    // elimination order. Updates only ever mark steps LATER than the one
    // being processed (an L column never contains its own or an earlier
    // pivot row), so draining each word lowest-bit-first with a done-mask
    // — which picks up bits set mid-word — still visits steps in strictly
    // increasing order.
    const std::size_t words = (k + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t done = 0;
      for (;;) {
        const std::uint64_t pending = live[w] & ~done;
        if (pending == 0) break;
        const int bit = std::countr_zero(pending);
        done |= std::uint64_t{1} << bit;
        const std::size_t j = (w << 6) | static_cast<std::size_t>(bit);
        const double xp = x[lu.pivot_row_[j]];
        if (xp == 0.0) continue;
        const std::size_t lend = lu.l_start_[j + 1];
        for (std::size_t t = lu.l_start_[j]; t < lend; ++t) {
          const auto row = static_cast<std::size_t>(lu.l_idx_[t]);
          if (x[row] == 0.0) touched.push_back(row);
          x[row] -= lu.l_val_[t] * xp;
          if (pivoted_at[row] != m) set_bit(live, pivoted_at[row]);
        }
      }
    }
    // Partial pivoting over the rows not yet chosen.
    std::size_t pivot = m;
    double best = 0.0;
    for (std::size_t row : touched) {
      if (pivoted_at[row] != m) continue;
      const double mag = std::fabs(x[row]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (pivot == m || best < options.pivot_tolerance) return std::nullopt;

    lu.pivot_row_[k] = pivot;
    pivoted_at[pivot] = k;
    const double dk = x[pivot];
    lu.diag_[k] = dk;
    for (std::size_t row : touched) {
      const double v = x[row];
      x[row] = 0.0;  // reset the accumulator as we drain it
      const std::size_t p = pivoted_at[row];
      if (p != m) clear_bit(live, p);
      if (row == pivot || std::fabs(v) <= options.drop_tolerance) continue;
      if (p != m) {
        lu.u_idx_.push_back(static_cast<Index>(p));
        lu.u_val_.push_back(v);
      } else {
        lu.l_idx_.push_back(static_cast<Index>(row));
        lu.l_val_.push_back(v / dk);
      }
    }
    lu.l_start_.push_back(lu.l_idx_.size());
    lu.u_start_.push_back(lu.u_idx_.size());
    touched.clear();
  }
  lu.factor_nnz_ = m + lu.l_idx_.size() + lu.u_idx_.size();

  // Transposed mirrors for the push-form BTRAN solves, by counting sort —
  // entries of row j (ur) / original row r (ltrans) end up ordered by
  // elimination step, exactly the order the old per-row push lists held.
  lu.ur_start_.assign(m + 1, 0);
  for (const Index pos : lu.u_idx_) ++lu.ur_start_[pos + 1];
  for (std::size_t i = 0; i < m; ++i) lu.ur_start_[i + 1] += lu.ur_start_[i];
  lu.ur_idx_.resize(lu.u_idx_.size());
  lu.ur_val_.resize(lu.u_idx_.size());
  lu.lt_start_.assign(m + 1, 0);
  for (const Index row : lu.l_idx_) ++lu.lt_start_[row + 1];
  for (std::size_t i = 0; i < m; ++i) lu.lt_start_[i + 1] += lu.lt_start_[i];
  lu.lt_idx_.resize(lu.l_idx_.size());
  lu.lt_val_.resize(lu.l_idx_.size());
  {
    std::vector<std::size_t> ufill(lu.ur_start_.begin(),
                                   lu.ur_start_.end() - 1);
    std::vector<std::size_t> lfill(lu.lt_start_.begin(),
                                   lu.lt_start_.end() - 1);
    for (std::size_t k = 0; k < m; ++k) {
      for (std::size_t t = lu.u_start_[k]; t < lu.u_start_[k + 1]; ++t) {
        const std::size_t at = ufill[lu.u_idx_[t]]++;
        lu.ur_idx_[at] = static_cast<Index>(k);
        lu.ur_val_[at] = lu.u_val_[t];
      }
      for (std::size_t t = lu.l_start_[k]; t < lu.l_start_[k + 1]; ++t) {
        const std::size_t at = lfill[lu.l_idx_[t]]++;
        lu.lt_idx_[at] = static_cast<Index>(lu.pivot_row_[k]);
        lu.lt_val_[at] = lu.l_val_[t];
      }
    }
  }
  return lu;
}

void BasisLu::ftran(std::vector<double>& x, Workspace& ws) const {
  const std::size_t m = dim();
  // Apply L^-1 (row space).
  {
    const Index* const idx = l_idx_.data();
    const double* const val = l_val_.data();
    for (std::size_t k = 0; k < m; ++k) {
      const double xp = x[pivot_row_[k]];
      if (xp == 0.0) continue;
      const std::size_t end = l_start_[k + 1];
      for (std::size_t t = l_start_[k]; t < end; ++t) {
        x[idx[t]] -= val[t] * xp;
      }
    }
  }
  // Permute into position space, then backsolve U.
  std::vector<double>& y = ws.scratch;
  y.resize(m);
  for (std::size_t k = 0; k < m; ++k) y[k] = x[pivot_row_[k]];
  {
    const Index* const idx = u_idx_.data();
    const double* const val = u_val_.data();
    for (std::size_t k = m; k-- > 0;) {
      const double t = y[k] / diag_[k];
      y[k] = t;
      if (t == 0.0) continue;
      const std::size_t end = u_start_[k + 1];
      for (std::size_t tt = u_start_[k]; tt < end; ++tt) {
        y[idx[tt]] -= val[tt] * t;
      }
    }
  }
  x.swap(y);
  // Product-form updates, oldest first.
  {
    const Index* const idx = eta_idx_.data();
    const double* const val = eta_val_.data();
    for (std::size_t e = 0; e < eta_r_.size(); ++e) {
      const auto r = static_cast<std::size_t>(eta_r_[e]);
      const double t = x[r] / eta_pivot_[e];
      x[r] = t;
      if (t == 0.0) continue;
      const std::size_t end = eta_start_[e + 1];
      for (std::size_t tt = eta_start_[e]; tt < end; ++tt) {
        x[idx[tt]] -= val[tt] * t;
      }
    }
  }
}

void BasisLu::btran(std::vector<double>& x, Workspace& ws) const {
  const std::size_t m = dim();
  // Transposed eta file, newest first: each eta contributes a gather dot
  // product. Accumulation stays in strict term order — NOT unrolled into
  // independent accumulators — because reassociating it perturbs the pivot
  // path and thereby which optimal VERTEX degenerate models land on;
  // downstream consumers (tree extraction, schedules) are vertex-sensitive
  // even though the objective is not. The SoA layout still pipelines the
  // index/value streams.
  {
    const Index* const idx = eta_idx_.data();
    const double* const val = eta_val_.data();
    for (std::size_t e = eta_r_.size(); e-- > 0;) {
      const std::size_t end = eta_start_[e + 1];
      double t = x[eta_r_[e]];
      for (std::size_t tt = eta_start_[e]; tt < end; ++tt) {
        t -= val[tt] * x[idx[tt]];
      }
      x[eta_r_[e]] = t / eta_pivot_[e];
    }
  }
  // Forward solve U' w = c in position space, PUSH form: once w_k is final
  // its contributions scatter along row k of U, and a zero w_k — the
  // overwhelmingly common case for the near-singleton vectors the simplex
  // prices with — costs nothing.
  {
    const Index* const idx = ur_idx_.data();
    const double* const val = ur_val_.data();
    for (std::size_t k = 0; k < m; ++k) {
      const double t = x[k];
      if (t == 0.0) continue;
      const double wk = t / diag_[k];
      x[k] = wk;
      const std::size_t end = ur_start_[k + 1];
      for (std::size_t tt = ur_start_[k]; tt < end; ++tt) {
        x[idx[tt]] -= val[tt] * wk;
      }
    }
  }
  // Permute back to row space and apply L^-T, newest elimination step
  // first, again in push form: y[pivot_row_[k]] is final when step k runs
  // (ltrans only targets earlier elimination steps).
  std::vector<double>& y = ws.scratch;
  y.assign(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) y[pivot_row_[k]] = x[k];
  {
    const Index* const idx = lt_idx_.data();
    const double* const val = lt_val_.data();
    for (std::size_t k = m; k-- > 0;) {
      const std::size_t row = pivot_row_[k];
      const double z = y[row];
      if (z == 0.0) continue;
      const std::size_t end = lt_start_[row + 1];
      for (std::size_t tt = lt_start_[row]; tt < end; ++tt) {
        y[idx[tt]] -= val[tt] * z;
      }
    }
  }
  x.swap(y);
}

bool BasisLu::update(std::size_t r, const std::vector<double>& w) {
  const double pivot = w[r];
  if (std::fabs(pivot) < options_.pivot_tolerance) return false;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != r && std::fabs(w[i]) > options_.drop_tolerance) {
      eta_idx_.push_back(static_cast<Index>(i));
      eta_val_.push_back(w[i]);
    }
  }
  eta_nnz_ += eta_idx_.size() - eta_start_.back() + 1;
  eta_start_.push_back(eta_idx_.size());
  eta_r_.push_back(static_cast<Index>(r));
  eta_pivot_.push_back(pivot);
  return true;
}

}  // namespace ssco::lp
