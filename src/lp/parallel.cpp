#include "lp/parallel.h"

#include <chrono>
#include <utility>

namespace ssco::lp {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::size_t hardware_threads() {
  static const std::size_t n = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  }();
  return n;
}

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::execute_some(Job& job, std::unique_lock<std::mutex>& lock) {
  ++job.active;
  while (job.next < job.shards) {
    const std::size_t shard = job.next++;
    if (job.next >= job.shards) {
      // Exhausted: retire the job from the queue so later arrivals skip it.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == &job) {
          queue_.erase(it);
          break;
        }
      }
    }
    lock.unlock();
    std::exception_ptr error;
    const std::uint64_t t0 = steady_ns();
    try {
      (*job.fn)(shard);
    } catch (...) {
      error = std::current_exception();
    }
    busy_ns_.fetch_add(steady_ns() - t0, std::memory_order_relaxed);
    shards_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    if (error && (!job.error || shard < job.error_shard)) {
      job.error = error;
      job.error_shard = shard;
    }
    ++job.done;
  }
  --job.active;
  if (job.done == job.shards && job.active == 0) job.done_cv.notify_all();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Job& job = *queue_.front();
    execute_some(job, lock);
  }
}

void ThreadPool::run(std::size_t shards,
                     const std::function<void(std::size_t)>& fn) {
  if (shards == 0) return;
  jobs_.fetch_add(1, std::memory_order_relaxed);
  if (shards == 1 || threads_.empty()) {
    const std::uint64_t t0 = steady_ns();
    for (std::size_t s = 0; s < shards; ++s) fn(s);
    busy_ns_.fetch_add(steady_ns() - t0, std::memory_order_relaxed);
    inline_shards_.fetch_add(shards, std::memory_order_relaxed);
    return;
  }
  Job job;
  job.fn = &fn;
  job.shards = shards;
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&job);
  work_cv_.notify_all();
  // The caller works too, then waits for stragglers. `active == 0` ensures
  // no helper still holds a pointer into this stack frame.
  execute_some(job, lock);
  job.done_cv.wait(lock,
                   [&] { return job.done == job.shards && job.active == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers = threads_.size();
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.shards = shards_.load(std::memory_order_relaxed);
  s.inline_shards = inline_shards_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads() - 1);
  return pool;
}

}  // namespace ssco::lp
