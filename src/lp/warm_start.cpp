#include "lp/warm_start.h"

#include <algorithm>
#include <string_view>
#include <utility>

namespace ssco::lp {

namespace {

constexpr std::size_t kNone = ColumnLayout::kNone;

/// Variables with a finite upper bound, in declaration order — the order in
/// which ExpandedModel::from materializes their bound rows.
std::vector<std::size_t> bounded_vars(const Model& model) {
  std::vector<std::size_t> vars;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.upper_bound(VarId{j})) vars.push_back(j);
  }
  return vars;
}

/// Sorted name -> index table. Deliberately NOT a hash map: lookup results
/// and tie-breaking (duplicate names resolve to the smallest index) are
/// fully determined by the sorted order, so basis snapshot mapping — and
/// therefore every fingerprint/cache interaction built on top of it — is
/// reproducible across runs, platforms and standard libraries.
class NameIndex {
 public:
  explicit NameIndex(std::size_t expected) { entries_.reserve(expected); }

  void add(std::string_view name, std::size_t index) {
    entries_.emplace_back(name, index);
  }
  void finish() { std::sort(entries_.begin(), entries_.end()); }

  /// Smallest index carrying `name`, or kNone. Requires finish() first.
  [[nodiscard]] std::size_t find(std::string_view name) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const auto& entry, std::string_view n) { return entry.first < n; });
    if (it == entries_.end() || it->first != name) return kNone;
    return it->second;
  }

 private:
  // string_views into the Model's stored names; valid for this pass only.
  std::vector<std::pair<std::string_view, std::size_t>> entries_;
};

}  // namespace

WarmStart capture_warm_start(const Model& model,
                             const std::vector<BasisColumn>& basis) {
  WarmStart warm;
  const std::vector<std::size_t> bounded = bounded_vars(model);
  warm.entries.reserve(basis.size());
  for (const BasisColumn& column : basis) {
    WarmStart::Entry entry;
    entry.kind = column.kind;
    if (column.kind == BasisColumn::Kind::kStructural) {
      if (column.index >= model.num_variables()) continue;
      entry.name = model.variable_name(VarId{column.index});
    } else if (column.index < model.num_rows()) {
      entry.name = model.row(RowId{column.index}).name;
    } else {
      const std::size_t k = column.index - model.num_rows();
      if (k >= bounded.size()) continue;
      entry.bound_row = true;
      entry.name = model.variable_name(VarId{bounded[k]});
    }
    if (entry.name.empty()) continue;  // unnamed entities cannot be re-keyed
    warm.entries.push_back(std::move(entry));
  }
  return warm;
}

std::optional<std::vector<std::size_t>> map_warm_basis(
    const WarmStart& warm, const Model& model, const ExpandedModel& em,
    const ColumnLayout& layout) {
  if (warm.empty()) return std::nullopt;
  const std::size_t m = em.rows.size();

  NameIndex var_by_name(model.num_variables());
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    var_by_name.add(model.variable_name(VarId{j}), j);
  }
  var_by_name.finish();
  NameIndex row_by_name(model.num_rows());
  for (std::size_t i = 0; i < model.num_rows(); ++i) {
    row_by_name.add(model.row(RowId{i}).name, i);
  }
  row_by_name.finish();
  // Bounded variables are collected in increasing variable order, so the
  // bound-row of variable j is em.num_model_rows + its rank in `bounded`.
  const std::vector<std::size_t> bounded = bounded_vars(model);

  std::vector<std::size_t> columns;
  columns.reserve(m);
  std::vector<char> used(layout.num_cols, 0);
  auto take = [&](std::size_t col) {
    if (col == kNone || col >= layout.num_cols || used[col]) return;
    if (columns.size() == m) return;
    used[col] = 1;
    columns.push_back(col);
  };

  for (const WarmStart::Entry& entry : warm.entries) {
    if (columns.size() == m) break;
    if (entry.kind == BasisColumn::Kind::kStructural) {
      take(var_by_name.find(entry.name));
      continue;
    }
    std::size_t row = kNone;
    if (entry.bound_row) {
      const std::size_t var = var_by_name.find(entry.name);
      if (var != kNone) {
        auto it = std::lower_bound(bounded.begin(), bounded.end(), var);
        if (it != bounded.end() && *it == var) {
          row = em.num_model_rows +
                static_cast<std::size_t>(it - bounded.begin());
        }
      }
    } else {
      row = row_by_name.find(entry.name);
    }
    if (row == kNone) continue;
    // A sense change (e.g. a flipped RHS sign) may have swapped which
    // identity columns the row owns; take whichever exists, slack first.
    if (entry.kind == BasisColumn::Kind::kArtificial) {
      take(layout.art_col[row] != kNone ? layout.art_col[row]
                                        : layout.slack_col[row]);
    } else {
      take(layout.slack_col[row] != kNone ? layout.slack_col[row]
                                          : layout.art_col[row]);
    }
  }

  // Complete with identity columns, starting with rows no chosen column can
  // reach at all (a brand-new row with none of the mapped variables in its
  // support NEEDS its own slack/artificial or the basis is singular), then
  // any remaining rows in order. Every row owns a slack or an artificial,
  // so this always reaches m.
  std::vector<char> reachable(m, 0);
  {
    std::vector<char> chosen_var(em.num_vars, 0);
    for (std::size_t col : columns) {
      if (col < layout.num_vars) {
        chosen_var[col] = 1;
      } else {
        reachable[layout.column_identity[col].index] = 1;
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (const auto& [idx, coeff] : em.rows[i].coeffs) {
        if (chosen_var[idx] && !coeff.is_zero()) {
          reachable[i] = 1;
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < m && columns.size() < m; ++i) {
    if (reachable[i]) continue;
    take(layout.slack_col[i] != kNone ? layout.slack_col[i]
                                      : layout.art_col[i]);
  }
  for (std::size_t i = 0; i < m && columns.size() < m; ++i) {
    take(layout.slack_col[i]);
  }
  for (std::size_t i = 0; i < m && columns.size() < m; ++i) {
    take(layout.art_col[i]);
  }
  if (columns.size() != m) return std::nullopt;
  return columns;
}

std::optional<std::vector<std::size_t>> columns_from_basis(
    const ColumnLayout& layout, const std::vector<BasisColumn>& basis) {
  std::vector<std::size_t> columns;
  columns.reserve(basis.size());
  for (const BasisColumn& b : basis) {
    std::size_t col = kNone;
    switch (b.kind) {
      case BasisColumn::Kind::kStructural:
        if (b.index < layout.num_vars) col = b.index;
        break;
      case BasisColumn::Kind::kSlack:
      case BasisColumn::Kind::kSurplus:
        if (b.index < layout.slack_col.size()) col = layout.slack_col[b.index];
        break;
      case BasisColumn::Kind::kArtificial:
        if (b.index < layout.art_col.size()) col = layout.art_col[b.index];
        break;
    }
    if (col == kNone) return std::nullopt;
    columns.push_back(col);
  }
  return columns;
}

}  // namespace ssco::lp
