#pragma once
// Parallel solve fabric: a fixed worker pool plus a deterministic
// range-splitting harness for the LP engine's embarrassingly parallel
// column loops (exact certificate verification, colgen pricing sweeps).
//
// Determinism contract — the reason parallel results are BIT-IDENTICAL to
// serial at every thread count (DESIGN.md "Parallel solve fabric"):
//  * shard boundaries are a pure function of (items, shard count), never of
//    pool occupancy or scheduling;
//  * call sites either compute independent per-item values merged in shard-
//    major order (= the serial scan order), or combine per-shard partials
//    with EXACT rational arithmetic, where every grouping yields the same
//    canonical value. No floating-point reduction is ever reassociated.
//
// The pool runs shards on helper threads AND the calling thread: a pool
// with zero workers (or a Parallel with threads == 1) degenerates to an
// inline serial loop with no synchronization beyond one mutex round-trip,
// so single-core containers pay essentially nothing for the plumbing.
//
// Budgeting: concurrency of one for_shards call is bounded by the
// Parallel's `threads` budget, because at most `threads` shards exist.
// Several solves may share one pool (the plan service's workers do); each
// brings its own budget, so intra-solve parallelism cannot oversubscribe
// the machine beyond pool-size + callers.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssco::lp {

/// Cached std::thread::hardware_concurrency(), never less than 1.
[[nodiscard]] std::size_t hardware_threads();

/// Resolves a thread-count knob: 0 means "all hardware threads".
[[nodiscard]] inline std::size_t resolve_threads(std::size_t requested) {
  return requested == 0 ? hardware_threads() : requested;
}

/// Cache-line-aligned wrapper for per-shard scratch state, so neighbouring
/// shards' hot writes never false-share (idiom per the in-network
/// aggregation exemplar in SNIPPETS.md).
inline constexpr std::size_t kCacheLineSize = 64;
template <typename T>
struct alignas(kCacheLineSize) ShardLocal {
  T value{};
};

/// Contiguous half-open slice of the item range owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Deterministic contiguous split of [0, items) into `shards` pieces whose
/// sizes differ by at most one: shard s gets [s*items/shards,
/// (s+1)*items/shards). Depends on nothing but its arguments.
[[nodiscard]] inline ShardRange shard_range(std::size_t items,
                                            std::size_t shards,
                                            std::size_t shard) {
  return {shard * items / shards, (shard + 1) * items / shards};
}

/// Cumulative pool utilization (obs: exported as gauges from
/// PlanService::metrics_snapshot()). `busy_ns` is wall time spent inside
/// shard bodies summed over all executing threads — divided by elapsed
/// wall time and worker count it gives pool utilization. `inline_shards`
/// counts shards that bypassed the queue entirely (serial fast path).
struct PoolStats {
  std::size_t workers = 0;
  std::uint64_t jobs = 0;
  std::uint64_t shards = 0;
  std::uint64_t inline_shards = 0;
  std::uint64_t busy_ns = 0;
};

/// Fixed pool of helper threads executing shard jobs. The CALLER of run()
/// participates too, so a pool with `workers == 0` still makes progress
/// (everything runs inline on the caller). run() is safe to call from any
/// number of threads concurrently — jobs share the helpers fairly via a
/// FIFO of active jobs. Nested run() from inside a shard body cannot
/// deadlock (every caller drains its own job's shards itself), but nested
/// concurrency counts against no budget — callers that fork inside shards
/// must split their budget explicitly (see solve_sparse_exact_pair).
class ThreadPool {
 public:
  /// Spawns `workers` helper threads (0 is valid and cheap).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  /// Executes fn(shard) for every shard in [0, shards), distributing shards
  /// over the helpers and the calling thread; blocks until all complete.
  /// Exceptions: the one thrown by the LOWEST shard index is rethrown
  /// (deterministic); remaining shards still run to completion.
  void run(std::size_t shards, const std::function<void(std::size_t)>& fn);

  /// Cumulative utilization counters since construction. Counters are
  /// relaxed atomics bumped outside the scheduler lock, so a snapshot is
  /// monotone but not cross-field consistent — fine for gauges.
  [[nodiscard]] PoolStats stats() const;

  /// Process-wide shared pool with hardware_threads() - 1 helpers, created
  /// on first use. Intra-solve parallelism and the plan service both draw
  /// from this one pool so the machine is never oversubscribed by design.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t shards = 0;
    std::size_t next = 0;    // next shard index to hand out (guarded by mu_)
    std::size_t done = 0;    // completed shard count (guarded by mu_)
    std::size_t active = 0;  // threads currently inside this job
    std::size_t error_shard = 0;  // lowest failing shard, valid iff error
    std::exception_ptr error;
    std::condition_variable done_cv;
  };

  void worker_loop();
  /// Drains shard indices from `job` until none are left. Called with mu_
  /// held; returns with mu_ held.
  void execute_some(Job& job, std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job*> queue_;  // jobs that may still have shards to hand out
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // Utilization counters (see stats()); bumped with the lock released.
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> shards_{0};
  std::atomic<std::uint64_t> inline_shards_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

/// Handle a solve carries into its column loops: which pool to use and how
/// many shards may run concurrently. Copyable, cheap, never owns the pool.
struct Parallel {
  ThreadPool* pool = nullptr;  // null or threads <= 1: run inline, serial
  std::size_t threads = 1;     // concurrency budget for this solve

  /// Fully serial execution (the default-constructed state).
  [[nodiscard]] static Parallel serial() { return {}; }
  /// Budgeted execution on `pool` (budget 0 resolves to all hardware).
  [[nodiscard]] static Parallel with(ThreadPool& pool, std::size_t budget) {
    return {&pool, resolve_threads(budget)};
  }

  [[nodiscard]] bool is_serial() const {
    return pool == nullptr || threads <= 1;
  }

  /// Number of shards a loop over `items` items splits into: at most
  /// `threads`, at least 1, and never so many that a shard holds fewer than
  /// `min_per_shard` items (tiny loops stay serial — the fork overhead
  /// would dominate).
  [[nodiscard]] std::size_t shard_count(std::size_t items,
                                        std::size_t min_per_shard = 1) const {
    if (is_serial() || items == 0) return 1;
    const std::size_t cap =
        min_per_shard == 0 ? items : items / std::max<std::size_t>(min_per_shard, 1);
    const std::size_t shards = std::min(threads, std::max<std::size_t>(cap, 1));
    return std::max<std::size_t>(shards, 1);
  }

  /// Deterministically splits [0, items) into shard_count(items,
  /// min_per_shard) contiguous ranges and runs fn(shard, begin, end) for
  /// each, possibly concurrently; blocks until all are done and rethrows
  /// the lowest-shard exception. With one shard, runs fn inline — no pool,
  /// no allocation, no synchronization.
  template <typename Fn>
  void for_shards(std::size_t items, std::size_t min_per_shard,
                  Fn&& fn) const {
    const std::size_t shards = shard_count(items, min_per_shard);
    if (shards <= 1) {
      fn(std::size_t{0}, std::size_t{0}, items);
      return;
    }
    pool->run(shards, [&](std::size_t shard) {
      const ShardRange r = shard_range(items, shards, shard);
      fn(shard, r.begin, r.end);
    });
  }

  /// Runs a fixed list of independent closures (e.g. the FTRAN and BTRAN
  /// halves of a basis verification), inline when serial.
  void invoke_all(const std::vector<std::function<void()>>& tasks) const {
    if (is_serial() || tasks.size() <= 1) {
      for (const auto& t : tasks) t();
      return;
    }
    pool->run(tasks.size(), [&](std::size_t i) { tasks[i](); });
  }
};

}  // namespace ssco::lp
