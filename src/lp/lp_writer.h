#pragma once
// Debug/interop dump of a Model in CPLEX LP text format.
//
// The paper solved its programs with lp_solve/Maple; this writer lets users
// round-trip our generated LPs through any external solver to cross-check
// the built-in one. Rationals are emitted as decimal ratios ("2/9" is written
// as its exact decimal expansion when finite, otherwise as a high-precision
// decimal approximation with a trailing comment carrying the exact value).

#include <iosfwd>
#include <string>

#include "lp/model.h"

namespace ssco::lp {

/// Writes `model` in LP format to `os`.
void write_lp(std::ostream& os, const Model& model,
              const std::string& title = "ssco");

/// Convenience: LP text as a string.
[[nodiscard]] std::string to_lp_string(const Model& model,
                                       const std::string& title = "ssco");

}  // namespace ssco::lp
