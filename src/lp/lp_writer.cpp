#include "lp/lp_writer.h"

#include <ostream>
#include <sstream>

namespace ssco::lp {

namespace {

// LP format accepts plain decimals only; emit an exact decimal when the
// denominator is 2^a * 5^b, otherwise 18 significant digits.
std::string decimal(const Rational& r) {
  if (r.is_integer()) return r.num().to_string();
  BigInt den = r.den();
  int twos = 0;
  int fives = 0;
  while ((den % BigInt(2)).is_zero()) {
    den /= BigInt(2);
    ++twos;
  }
  while ((den % BigInt(5)).is_zero()) {
    den /= BigInt(5);
    ++fives;
  }
  if (den.is_one()) {
    const int digits = twos > fives ? twos : fives;
    BigInt scaled = r.num().abs() * BigInt::pow(BigInt(10), digits) / r.den();
    std::string s = scaled.to_string();
    while (static_cast<int>(s.size()) <= digits) s.insert(s.begin(), '0');
    s.insert(s.size() - static_cast<std::size_t>(digits), ".");
    if (r.is_negative()) s.insert(s.begin(), '-');
    return s;
  }
  std::ostringstream os;
  os.precision(18);
  os << r.to_double();
  return os.str();
}

void write_expr(std::ostream& os,
                const std::vector<std::pair<std::size_t, Rational>>& coeffs,
                const Model& model) {
  bool first = true;
  for (const auto& [idx, coeff] : coeffs) {
    if (coeff.is_zero()) continue;
    if (first) {
      if (coeff.is_negative()) os << "- ";
      first = false;
    } else {
      os << (coeff.is_negative() ? " - " : " + ");
    }
    Rational mag = coeff.abs();
    if (!mag.num().is_one() || !mag.is_integer()) os << decimal(mag) << " ";
    os << model.variable_name(VarId{idx});
  }
  if (first) os << "0";
}

}  // namespace

void write_lp(std::ostream& os, const Model& model, const std::string& title) {
  os << "\\ " << title << "  (" << model.num_variables() << " vars, "
     << model.num_rows() << " rows, " << model.num_nonzeros() << " nnz)\n";
  os << "Maximize\n obj: ";
  {
    std::vector<std::pair<std::size_t, Rational>> obj;
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      const Rational& c = model.objective_coeff(VarId{j});
      if (!c.is_zero()) obj.emplace_back(j, c);
    }
    write_expr(os, obj, model);
  }
  os << "\nSubject To\n";
  for (std::size_t i = 0; i < model.num_rows(); ++i) {
    const Model::Row& row = model.row(RowId{i});
    os << ' ' << (row.name.empty() ? "r" + std::to_string(i) : row.name)
       << ": ";
    write_expr(os, row.coeffs, model);
    switch (row.sense) {
      case Sense::kLessEqual:
        os << " <= ";
        break;
      case Sense::kEqual:
        os << " = ";
        break;
      case Sense::kGreaterEqual:
        os << " >= ";
        break;
    }
    os << decimal(row.rhs);
    if (!row.rhs.is_integer()) os << "  \\ exact " << row.rhs;
    os << "\n";
  }
  os << "Bounds\n";
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    VarId v{j};
    const Rational& lo = model.lower_bound(v);
    const auto& up = model.upper_bound(v);
    if (lo.is_zero() && !up) continue;
    os << ' ';
    if (up) {
      os << decimal(lo) << " <= " << model.variable_name(v) << " <= "
         << decimal(*up);
    } else {
      os << model.variable_name(v) << " >= " << decimal(lo);
    }
    os << "\n";
  }
  os << "End\n";
}

std::string to_lp_string(const Model& model, const std::string& title) {
  std::ostringstream os;
  write_lp(os, model, title);
  return os.str();
}

}  // namespace ssco::lp
