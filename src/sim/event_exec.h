#pragma once
// Discrete-event execution backend.
//
// The deterministic twin of exec/threaded_executor.h: the same compiled
// ExecProgram, the same admission rules (one-port pacing, token buckets,
// bounded channels, exact Rational availability), but a single loop that
// jumps a virtual clock to the next ready instant instead of sleeping real
// threads, and no payload allocation. Results are bit-reproducible, free of
// scheduler jitter, and fill the same ExecReport — so the gap between this
// report's efficiency and the threaded one's is precisely the cost of
// running on a real machine (DESIGN.md: execution data plane).
//
// Reproducibility extends to tracing (obs/trace.h): two simulate runs of
// the same program admit the same steps at the same virtual instants from
// one thread, so their exported traces are bit-identical after aligning
// the run-start offset — the trace test suite pins this down.

#include "core/steady_state.h"
#include "exec/exec_report.h"
#include "exec/program.h"
#include "platform/paper_instances.h"
#include "platform/platform.h"

namespace ssco::sim {

/// Simulates an already-compiled program on the virtual clock.
[[nodiscard]] exec::ExecReport simulate_execution(
    const exec::ExecProgram& program, const exec::ExecOptions& options = {});

/// Compiles and simulates a scatter/gossip flow plan.
[[nodiscard]] exec::ExecReport simulate_flow_execution(
    const platform::Platform& platform, const core::FlowPlan& plan,
    const exec::ExecOptions& options = {});

/// Compiles and simulates a reduce plan.
[[nodiscard]] exec::ExecReport simulate_reduce_execution(
    const platform::ReduceInstance& instance, const core::ReducePlan& plan,
    const exec::ExecOptions& options = {});

}  // namespace ssco::sim
