#include "sim/reduce_sim.h"

#include <algorithm>

#include "core/intervals.h"

namespace ssco::sim {

ReduceSimResult simulate_reduce_schedule(
    const platform::ReduceInstance& instance,
    const core::PeriodicSchedule& schedule, std::size_t periods) {
  const auto& graph = instance.platform.graph();
  const core::IntervalSpace sp(instance.participants.size());
  const std::size_t full = sp.full_interval_id();

  struct Event {
    Rational time;
    enum Kind { kDeposit, kWithdraw } kind;
    bool is_comm;
    std::size_t activity;
  };
  std::vector<Event> events;
  events.reserve(2 * (schedule.comms.size() + schedule.comps.size()));
  for (std::size_t i = 0; i < schedule.comms.size(); ++i) {
    events.push_back({schedule.comms[i].start, Event::kWithdraw, true, i});
    events.push_back({schedule.comms[i].end, Event::kDeposit, true, i});
  }
  for (std::size_t i = 0; i < schedule.comps.size(); ++i) {
    events.push_back({schedule.comps[i].start, Event::kWithdraw, false, i});
    events.push_back({schedule.comps[i].end, Event::kDeposit, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.kind == Event::kDeposit && b.kind == Event::kWithdraw;
  });

  // Owned singleton supply is unlimited: buffers track everything else.
  auto unlimited = [&](graph::NodeId node, std::size_t interval) {
    auto [k, m] = sp.interval(interval);
    return k == m && instance.participants[k] == node;
  };
  std::vector<std::vector<Rational>> buffers(
      graph.num_nodes(),
      std::vector<Rational>(sp.num_intervals(), Rational(0)));
  std::vector<Rational> comm_in_flight(schedule.comms.size(), Rational(0));
  std::vector<Rational> comp_in_flight(schedule.comps.size(), Rational(0));

  ReduceSimResult result;
  Rational completed(0);
  result.completed_by_period.reserve(periods);

  for (std::size_t p = 0; p < periods; ++p) {
    bool full_volume = true;
    for (const Event& ev : events) {
      if (ev.is_comm) {
        const core::CommActivity& act = schedule.comms[ev.activity];
        const auto& edge = graph.edge(act.edge);
        if (ev.kind == Event::kWithdraw) {
          Rational amount = act.messages;
          if (!unlimited(edge.src, act.type)) {
            amount = Rational::min(amount, buffers[edge.src][act.type]);
            buffers[edge.src][act.type] -= amount;
          }
          if (amount != act.messages) full_volume = false;
          comm_in_flight[ev.activity] = amount;
        } else {
          const Rational& amount = comm_in_flight[ev.activity];
          if (act.type == full && edge.dst == instance.target) {
            completed += amount;
          } else if (!unlimited(edge.dst, act.type)) {
            buffers[edge.dst][act.type] += amount;
          }
        }
      } else {
        const core::CompActivity& act = schedule.comps[ev.activity];
        auto [k, l, m] = sp.task(act.task);
        const std::size_t left = sp.interval_id(k, l);
        const std::size_t right = sp.interval_id(l + 1, m);
        const std::size_t product = sp.interval_id(k, m);
        if (ev.kind == Event::kWithdraw) {
          Rational amount = act.count;
          if (!unlimited(act.node, left)) {
            amount = Rational::min(amount, buffers[act.node][left]);
          }
          if (!unlimited(act.node, right)) {
            amount = Rational::min(amount, buffers[act.node][right]);
          }
          if (!unlimited(act.node, left)) buffers[act.node][left] -= amount;
          if (!unlimited(act.node, right)) buffers[act.node][right] -= amount;
          if (amount != act.count) full_volume = false;
          comp_in_flight[ev.activity] = amount;
        } else {
          const Rational& amount = comp_in_flight[ev.activity];
          if (product == full && act.node == instance.target) {
            completed += amount;
          } else {
            buffers[act.node][product] += amount;
          }
        }
      }
    }
    result.completed_by_period.push_back(completed);
    if (p + 1 == periods) result.steady_state_reached = full_volume;
  }

  result.horizon =
      schedule.period * Rational(static_cast<std::int64_t>(periods));
  result.completed_operations = completed;
  return result;
}

}  // namespace ssco::sim
