#include "sim/integral_sim.h"

#include <algorithm>
#include <deque>
#include <set>

namespace ssco::sim {

IntegralSimResult simulate_integral_flow(const platform::Platform& platform,
                                         const core::MultiFlow& flow,
                                         const core::PeriodicSchedule& schedule,
                                         std::size_t periods) {
  IntegralSimResult result;
  const auto& graph = platform.graph();
  const std::size_t num_commodities = flow.commodities.size();

  if (!schedule.has_integral_messages()) {
    result.error = "schedule carries fractional messages; integral execution "
                   "requires the no-split mode";
    return result;
  }

  struct Event {
    num::Rational time;
    bool is_deposit;
    std::size_t activity;
  };
  std::vector<Event> events;
  for (std::size_t i = 0; i < schedule.comms.size(); ++i) {
    events.push_back({schedule.comms[i].start, false, i});
    events.push_back({schedule.comms[i].end, true, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.is_deposit && !b.is_deposit;
  });

  // FIFO of message sequence numbers per (node, commodity). The origin
  // mints consecutive sequence numbers on demand.
  std::vector<std::vector<std::deque<std::uint64_t>>> buffers(
      graph.num_nodes(), std::vector<std::deque<std::uint64_t>>(num_commodities));
  std::vector<std::uint64_t> next_minted(num_commodities, 0);
  // Sequence numbers delivered per commodity (must never see duplicates).
  std::vector<std::set<std::uint64_t>> delivered_sets(num_commodities);
  std::vector<std::vector<std::uint64_t>> in_flight(schedule.comms.size());

  result.delivered.assign(num_commodities, 0);

  for (std::size_t p = 0; p < periods; ++p) {
    bool full_volume = true;
    for (const Event& ev : events) {
      const core::CommActivity& act = schedule.comms[ev.activity];
      const auto& edge = graph.edge(act.edge);
      const std::size_t k = act.type;
      const auto planned =
          static_cast<std::uint64_t>(act.messages.num().to_int64());
      if (!ev.is_deposit) {
        std::vector<std::uint64_t>& moving = in_flight[ev.activity];
        moving.clear();
        if (edge.src == flow.commodities[k].origin) {
          for (std::uint64_t i = 0; i < planned; ++i) {
            moving.push_back(next_minted[k]++);
          }
        } else {
          auto& queue = buffers[edge.src][k];
          while (moving.size() < planned && !queue.empty()) {
            moving.push_back(queue.front());
            queue.pop_front();
          }
        }
        if (moving.size() < planned) full_volume = false;
      } else {
        for (std::uint64_t seq : in_flight[ev.activity]) {
          if (edge.dst == flow.commodities[k].destination) {
            if (!delivered_sets[k].insert(seq).second) {
              result.error = "message delivered twice (commodity " +
                             std::to_string(k) + ", seq " +
                             std::to_string(seq) + ")";
              return result;
            }
            ++result.delivered[k];
          } else {
            buffers[edge.dst][k].push_back(seq);
          }
        }
        in_flight[ev.activity].clear();
      }
    }
    if (p + 1 == periods) result.steady_state_reached = full_volume;
  }

  // Completed operations: longest delivered prefix common to all commodities.
  std::uint64_t completed = UINT64_MAX;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    std::uint64_t prefix = 0;
    for (std::uint64_t seq : delivered_sets[k]) {
      if (seq != prefix) break;
      ++prefix;
    }
    completed = std::min(completed, prefix);
  }
  result.completed_operations = num_commodities == 0 ? 0 : completed;
  result.horizon =
      schedule.period * num::Rational(static_cast<std::int64_t>(periods));
  return result;
}

}  // namespace ssco::sim
