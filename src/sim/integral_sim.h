#pragma once
// Integral (per-message-identity) execution of no-split scatter/gossip
// schedules.
//
// The fluid simulator (scatter_sim.h) treats traffic as divisible — the
// paper's own relaxation for split-message schedules (Fig. 4(a)). For
// no-split schedules this executor is the stricter referee: every message
// is an indivisible unit tagged with its operation index, buffers are FIFO
// queues of those units, and an operation counts as complete only when ALL
// its messages (operation i of every commodity) have reached their
// destinations. This subsumes the fluid throughput check and additionally
// verifies that no message is ever duplicated, lost, or delivered twice.
//
// (Reduce schedules are validated by the fluid simulator: the aggregated
// schedule intentionally drops the tree identity of transfers, and integral
// timestamp matching would need tree-tagged activities; see DESIGN.md.)

#include <cstdint>
#include <string>
#include <vector>

#include "core/flow_solution.h"
#include "core/schedule.h"
#include "platform/paper_instances.h"

namespace ssco::sim {

struct IntegralSimResult {
  /// Total simulated time.
  num::Rational horizon;
  /// Messages delivered per commodity (integers).
  std::vector<std::uint64_t> delivered;
  /// Operations fully completed: max t such that operations 0..t-1 delivered
  /// every commodity's message.
  std::uint64_t completed_operations = 0;
  /// True when the final period moved every activity's full planned count.
  bool steady_state_reached = false;
  /// Empty when execution was consistent; otherwise the first integrity
  /// violation (duplicate/lost message, fractional activity, ...).
  std::string error;
};

/// Executes `periods` periods. Requires schedule.has_integral_messages().
[[nodiscard]] IntegralSimResult simulate_integral_flow(
    const platform::Platform& platform, const core::MultiFlow& flow,
    const core::PeriodicSchedule& schedule, std::size_t periods);

}  // namespace ssco::sim
