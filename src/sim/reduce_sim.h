#pragma once
// Fluid execution of a reduce periodic schedule.
//
// Same lazy-buffer engine as scatter_sim, extended with computation: a merge
// task T(k,l,m) on node P consumes buffered copies of v[k,l] and v[l+1,m]
// (each participant has unlimited supply of its own v[i,i]) and deposits
// v[k,m] when it finishes. Only ADJACENT intervals ever merge — the
// simulator cannot express a commutativity violation, and its bookkeeping
// verifies that the schedule's task mix actually assembles v[0,N-1] at the
// target at the steady-state rate after the pipeline fills (paper Sec. 4.5).

#include <vector>

#include "core/schedule.h"
#include "platform/paper_instances.h"

namespace ssco::sim {

using num::Rational;

struct ReduceSimResult {
  Rational horizon;
  /// Cumulative completed reductions (copies of v[0,N-1] absorbed by the
  /// target), sampled at the end of each period.
  std::vector<Rational> completed_by_period;
  Rational completed_operations;
  /// True when the last period executed every activity at its planned
  /// volume.
  bool steady_state_reached = false;
};

[[nodiscard]] ReduceSimResult simulate_reduce_schedule(
    const platform::ReduceInstance& instance,
    const core::PeriodicSchedule& schedule, std::size_t periods);

}  // namespace ssco::sim
