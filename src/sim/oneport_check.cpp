#include "sim/oneport_check.h"

#include <algorithm>
#include <map>
#include <vector>

namespace ssco::sim {

namespace {

using Interval = std::pair<Rational, Rational>;

std::string check_disjoint(std::vector<Interval>& intervals,
                           const std::string& what) {
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 0; i + 1 < intervals.size(); ++i) {
    if (intervals[i + 1].first < intervals[i].second) {
      return what + ": overlapping activities at t = " +
             intervals[i + 1].first.to_string();
    }
  }
  return {};
}

}  // namespace

std::string check_oneport(const core::PeriodicSchedule& schedule,
                          const platform::Platform& platform,
                          const OneportCheckOptions& options) {
  const auto& graph = platform.graph();
  if (schedule.period.signum() <= 0) return "non-positive period";

  std::map<graph::NodeId, std::vector<Interval>> out_port, in_port, cpu;

  for (const core::CommActivity& c : schedule.comms) {
    if (c.edge >= graph.num_edges()) return "comm references unknown edge";
    if (c.start.is_negative() || c.end > schedule.period || !(c.start < c.end)) {
      return "comm activity outside [0, period] or empty";
    }
    if (c.messages.signum() <= 0) return "comm with non-positive messages";
    Rational expected =
        c.messages * options.message_size * platform.edge_cost(c.edge);
    if (c.end - c.start != expected) {
      return "comm duration " + (c.end - c.start).to_string() +
             " != messages*size*c = " + expected.to_string();
    }
    out_port[graph.edge(c.edge).src].emplace_back(c.start, c.end);
    in_port[graph.edge(c.edge).dst].emplace_back(c.start, c.end);
  }
  for (const core::CompActivity& c : schedule.comps) {
    if (c.node >= graph.num_nodes()) return "comp references unknown node";
    if (c.start.is_negative() || c.end > schedule.period || !(c.start < c.end)) {
      return "comp activity outside [0, period] or empty";
    }
    if (c.count.signum() <= 0) return "comp with non-positive count";
    Rational expected =
        c.count * options.task_work / platform.node_speed(c.node);
    if (c.end - c.start != expected) {
      return "comp duration != count*work/speed";
    }
    cpu[c.node].emplace_back(c.start, c.end);
  }

  for (auto& [node, intervals] : out_port) {
    std::string err =
        check_disjoint(intervals, "out-port of node " + std::to_string(node));
    if (!err.empty()) return err;
  }
  for (auto& [node, intervals] : in_port) {
    std::string err =
        check_disjoint(intervals, "in-port of node " + std::to_string(node));
    if (!err.empty()) return err;
  }
  for (auto& [node, intervals] : cpu) {
    std::string err =
        check_disjoint(intervals, "cpu of node " + std::to_string(node));
    if (!err.empty()) return err;
  }
  return {};
}

}  // namespace ssco::sim
