#include "sim/scatter_sim.h"

#include <algorithm>

namespace ssco::sim {

ScatterSimResult simulate_flow_schedule(const platform::Platform& platform,
                                        const core::MultiFlow& flow,
                                        const core::PeriodicSchedule& schedule,
                                        std::size_t periods) {
  const auto& graph = platform.graph();
  const std::size_t num_commodities = flow.commodities.size();

  // Event order within one period: by time, deposits before withdrawals at
  // equal instants (a fully received message can be forwarded immediately).
  struct Event {
    Rational time;
    bool is_deposit;
    std::size_t activity;
  };
  std::vector<Event> events;
  events.reserve(schedule.comms.size() * 2);
  for (std::size_t i = 0; i < schedule.comms.size(); ++i) {
    events.push_back({schedule.comms[i].start, false, i});
    events.push_back({schedule.comms[i].end, true, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.is_deposit && !b.is_deposit;  // deposits first
  });

  // buffers[node][commodity]; origins have unlimited supply (not tracked).
  std::vector<std::vector<Rational>> buffers(
      graph.num_nodes(), std::vector<Rational>(num_commodities, Rational(0)));
  // Amount actually withdrawn by each in-flight activity this period.
  std::vector<Rational> in_flight(schedule.comms.size(), Rational(0));

  ScatterSimResult result;
  result.delivered.assign(num_commodities, Rational(0));
  result.delivered_by_period.reserve(periods);

  for (std::size_t p = 0; p < periods; ++p) {
    bool full_delivery = true;
    for (const Event& ev : events) {
      const core::CommActivity& act = schedule.comms[ev.activity];
      const auto& edge = graph.edge(act.edge);
      const std::size_t k = act.type;
      if (!ev.is_deposit) {
        Rational amount = act.messages;
        if (edge.src != flow.commodities[k].origin) {
          amount = Rational::min(amount, buffers[edge.src][k]);
          buffers[edge.src][k] -= amount;
        }
        if (amount != act.messages) full_delivery = false;
        in_flight[ev.activity] = amount;
      } else {
        const Rational& amount = in_flight[ev.activity];
        if (edge.dst == flow.commodities[k].destination) {
          result.delivered[k] += amount;
        } else {
          buffers[edge.dst][k] += amount;
        }
      }
    }
    result.delivered_by_period.push_back(result.delivered);
    if (p + 1 == periods) result.steady_state_reached = full_delivery;
  }

  result.horizon = schedule.period * Rational(static_cast<std::int64_t>(periods));
  if (!result.delivered.empty()) {
    result.completed_operations = result.delivered[0];
    for (const Rational& d : result.delivered) {
      result.completed_operations = Rational::min(result.completed_operations, d);
    }
  }
  return result;
}

}  // namespace ssco::sim
