#pragma once
// Static verification of a periodic schedule against the one-port model.
//
// The paper's correctness claim for the constructed schedules is structural:
// inside one period, no processor ever runs two sends, two receives, or two
// transfers of inconsistent duration. This checker verifies, exactly:
//  * every activity lies inside [0, period] with positive length;
//  * communication durations equal messages * size * c(e);
//  * computation durations equal count * work / speed;
//  * per node, out-port activities are pairwise disjoint, in-port activities
//    are pairwise disjoint, and CPU activities are pairwise disjoint
//    (touching endpoints are fine).
//
// Because activities never cross the period boundary by construction, intra-
// period disjointness implies disjointness of the infinite periodic
// repetition.

#include <string>

#include "core/schedule.h"
#include "num/rational.h"
#include "platform/platform.h"

namespace ssco::sim {

using num::Rational;

struct OneportCheckOptions {
  Rational message_size{1};
  Rational task_work{1};
};

/// Returns a description of the first violation, or empty when the schedule
/// is one-port valid.
[[nodiscard]] std::string check_oneport(const core::PeriodicSchedule& schedule,
                                        const platform::Platform& platform,
                                        const OneportCheckOptions& options = {});

}  // namespace ssco::sim
