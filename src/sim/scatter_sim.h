#pragma once
// Fluid execution of a scatter/gossip periodic schedule.
//
// Plays the schedule period after period against per-node message buffers
// with *lazy* semantics: an activity moves as much of its planned traffic as
// the sender's buffer holds (the origin has unlimited supply). This is the
// runtime counterpart of the paper's Sec. 3.4 argument — during the
// initialization phase buffers fill and activities under-deliver; once every
// buffer holds one period's worth of traffic the execution is exactly
// periodic and the delivery rate equals TP. The simulator measures that ramp
// (bench prop1_optimality) and certifies that the steady state is reached.
//
// Fluid (fractional) amounts are the natural semantics for split-message
// schedules (Fig. 4(a)); with a no-split schedule all quantities stay
// integral throughout.

#include <vector>

#include "core/flow_solution.h"
#include "core/schedule.h"
#include "platform/paper_instances.h"

namespace ssco::sim {

using num::Rational;

struct ScatterSimResult {
  /// Total simulated time (periods * period length).
  Rational horizon;
  /// Cumulative messages delivered to each commodity's destination, indexed
  /// like the MultiFlow commodities, sampled at the end of each period.
  std::vector<std::vector<Rational>> delivered_by_period;
  /// Final cumulative deliveries per commodity.
  std::vector<Rational> delivered;
  /// Completed collective operations = min over commodities of delivered.
  Rational completed_operations;
  /// True when the last simulated period moved every activity's full planned
  /// traffic (steady state reached).
  bool steady_state_reached = false;
};

/// Runs `periods` periods of the schedule. The commodity list must be the
/// MultiFlow the schedule was built from (provides origins/destinations).
[[nodiscard]] ScatterSimResult simulate_flow_schedule(
    const platform::Platform& platform, const core::MultiFlow& flow,
    const core::PeriodicSchedule& schedule, std::size_t periods);

}  // namespace ssco::sim
