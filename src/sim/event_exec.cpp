#include "sim/event_exec.h"

#include "exec/engine.h"

namespace ssco::sim {

exec::ExecReport simulate_execution(const exec::ExecProgram& program,
                                    const exec::ExecOptions& options) {
  return exec::run_event(program, options);
}

exec::ExecReport simulate_flow_execution(const platform::Platform& platform,
                                         const core::FlowPlan& plan,
                                         const exec::ExecOptions& options) {
  const exec::ExecProgram program =
      exec::compile_flow_program(platform, plan.flow, plan.schedule, options);
  return exec::run_event(program, options);
}

exec::ExecReport simulate_reduce_execution(
    const platform::ReduceInstance& instance, const core::ReducePlan& plan,
    const exec::ExecOptions& options) {
  const exec::ExecProgram program = exec::compile_reduce_program(
      instance, plan.solution.throughput, plan.schedule, options);
  return exec::run_event(program, options);
}

}  // namespace ssco::sim
