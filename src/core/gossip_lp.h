#pragma once
// Series-of-Gossips (personalized all-to-all) steady-state LP — SSPA2A(G),
// paper Sec. 3.5.
//
// Every source P_k streams a distinct message type m_{k,l} to every target
// P_l; the LP maximizes the common rate TP at which each (source, target)
// pair delivers. Identical structure to the scatter LP with one commodity
// per ordered pair; pairs with k == l need no communication and are skipped.

#include "core/flow_solution.h"
#include "lp/exact_solver.h"
#include "platform/paper_instances.h"

namespace ssco::core {

struct GossipLpOptions {
  lp::ExactSolverOptions solver;
  bool prune_cycles = true;
};

[[nodiscard]] lp::Model build_gossip_lp(
    const platform::GossipInstance& instance);

/// Commodity order in the result: for each source (in instance order), each
/// distinct target in instance order.
/// `previous` (optional) warm-starts the solve from that solution's optimal
/// basis — see solve_scatter.
[[nodiscard]] MultiFlow solve_gossip(const platform::GossipInstance& instance,
                                     const GossipLpOptions& options = {},
                                     const MultiFlow* previous = nullptr);

}  // namespace ssco::core
