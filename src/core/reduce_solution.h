#pragma once
// Steady-state reduce solution — the application A of paper Sec. 4.2/4.3.
//
// Holds, per time-unit: the fractional number of each partial value v[k,m]
// crossing each edge (send) and of each merge task T(k,l,m) executed on each
// node (cons). Provides exact validation of the SSR constraints (one-port,
// compute load, the interval conservation law, throughput at the target) and
// cycle pruning per interval (same rationale as for scatter flows: the tree
// extractor of Sec. 4.4 assumes well-formed, cycle-free applications).

#include <string>
#include <vector>

#include "core/intervals.h"
#include "graph/digraph.h"
#include "lp/simplex.h"
#include "lp/warm_start.h"
#include "num/rational.h"
#include "platform/paper_instances.h"

namespace ssco::core {

using graph::EdgeId;
using graph::NodeId;
using num::BigInt;
using num::Rational;

struct ReduceSolution {
  /// Logical index space of the reduction (n = number of participants).
  std::size_t num_participants = 0;
  /// Optimal throughput TP (reduce operations completed per time-unit).
  Rational throughput;
  /// send[interval_id][edge_id]: messages v[k,m] crossing the edge per
  /// time-unit.
  std::vector<std::vector<Rational>> send;
  /// cons[node_id][task_id]: tasks T(k,l,m) executed on the node per
  /// time-unit.
  std::vector<std::vector<Rational>> cons;
  bool certified = false;
  std::string lp_method;
  /// Simplex pivots spent solving the LP (float + exact passes combined).
  std::size_t lp_pivots = 0;
  /// Column-generation telemetry (zero on dense solves): pricing rounds,
  /// columns generated beyond the seed, and the implicit full model's
  /// column count — generated/total is the fraction ever materialized.
  std::size_t lp_colgen_rounds = 0;
  std::size_t lp_columns_generated = 0;
  std::size_t lp_columns_total = 0;
  /// Row-generation telemetry (zero on dense solves): rows of the implicit
  /// full model and how many the restricted master ever activated —
  /// active/total is the fraction of the row space the solve paid for.
  std::size_t lp_rows_active = 0;
  std::size_t lp_rows_total = 0;
  /// Pricing rounds priced at Wentges-smoothed duals (dual stabilization).
  std::size_t lp_stab_rounds = 0;
  /// Wall-clock phase split of the LP solve (FTRAN/BTRAN/pricing/factor from
  /// the float engine, certification + colgen pricing sweeps from
  /// ExactSolver) — what BENCH_lp.json's certify_ms/pricing_sweep_ms track.
  lp::SolvePhaseTimes lp_phase_times;
  /// Optimal-basis snapshot; pass this solution as `previous` to the next
  /// solve on a mutated platform to re-solve incrementally.
  lp::WarmStart lp_basis;
  /// True when this solution came from a warm-started re-solve.
  bool warm_started = false;

  [[nodiscard]] IntervalSpace space() const {
    return IntervalSpace(num_participants);
  }

  /// Busy time per time-unit on each edge.
  [[nodiscard]] std::vector<Rational> edge_occupation(
      const platform::ReduceInstance& instance) const;
  /// Compute busy time per time-unit on each node (the paper's alpha(P_i)).
  [[nodiscard]] std::vector<Rational> compute_load(
      const platform::ReduceInstance& instance) const;

  /// Exact validation of every SSR constraint. Returns a description of the
  /// first violation, or an empty string when valid.
  [[nodiscard]] std::string validate(
      const platform::ReduceInstance& instance) const;

  /// Cancels send-flow cycles interval by interval (cons values untouched;
  /// a cycle adds equally to inflow and outflow at each node on it, so the
  /// conservation law is preserved).
  void prune_cycles(const platform::ReduceInstance& instance);

  /// Net production of (interval, node) implied by this solution:
  /// in + produced - out - consumed. For a valid solution this is zero
  /// everywhere except the sources (v[i,i] at owners, negative net) and the
  /// sink (v[0,n-1] at target, +TP). Exposed for tests and the extractor.
  [[nodiscard]] Rational net_balance(const platform::ReduceInstance& instance,
                                     std::size_t interval_id,
                                     NodeId node) const;
};

}  // namespace ssco::core
