#pragma once
// Delta-stable LP entity names.
//
// The warm-start snapshot (lp/warm_start.h) re-keys a basis by variable and
// row NAMES, so names must survive a platform delta to be useful. Raw
// node/edge ids shift when apply_delta removes an entity; node NAMES follow
// the survivors (platform/delta.h keeps the name map consistent). Keying
// every LP entity on node names — an edge as "src.dst", which is unique
// because the platform graph rejects parallel edges — makes the names
// invariant under id churn: after a delta, exactly the vanished entities
// lose their names and everything else maps back onto itself. The "."
// separator keeps the names legal in the CPLEX LP format (lp/lp_writer.h);
// apply_delta rejects added node names containing '.' so composed tags
// cannot alias. Caveat: adversarial base-platform names can still collide
// through composition (a node literally named "B.C", or builder infixes
// like "_m" embedded in a name). That is tolerated by design — a colliding
// name degrades the warm-start mapping (wrong column pairing, extra
// pivots), never correctness: every solution is certified exactly
// regardless of what the basis snapshot mapped to.

#include <string>

#include "platform/platform.h"

namespace ssco::core {

/// Stable tag of edge e: "srcname.dstname".
inline std::string edge_tag(const platform::Platform& platform,
                            graph::EdgeId e) {
  const auto& edge = platform.graph().edge(e);
  return platform.node_name(edge.src) + "." + platform.node_name(edge.dst);
}

/// Stable tag of node n: its name.
inline const std::string& node_tag(const platform::Platform& platform,
                                   graph::NodeId n) {
  return platform.node_name(n);
}

}  // namespace ssco::core
