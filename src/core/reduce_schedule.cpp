#include "core/reduce_schedule.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/edge_coloring.h"
#include "core/integralize.h"

namespace ssco::core {

PeriodicSchedule build_reduce_schedule(
    const platform::ReduceInstance& instance,
    const TreeDecomposition& decomposition,
    const ReduceScheduleOptions& options) {
  const auto& graph = instance.platform.graph();
  const IntervalSpace sp(instance.participants.size());

  std::vector<Rational> weights;
  weights.reserve(decomposition.trees.size());
  for (const ReductionTree& t : decomposition.trees) weights.push_back(t.weight);
  const Rational period{Rational(integral_period(weights))};

  // Aggregate messages per (edge, interval) and tasks per (node, task)
  // across trees — the schedule does not need tree identity, and merging
  // keeps the bipartite graph small.
  std::map<std::pair<graph::EdgeId, std::size_t>, Rational> transfer_count;
  std::map<std::pair<graph::NodeId, std::size_t>, Rational> task_count;
  for (const ReductionTree& tree : decomposition.trees) {
    Rational per_period = tree.weight * period;
    for (const TreeTask& t : tree.tasks) {
      if (t.kind == TreeTask::Kind::kTransfer) {
        transfer_count[{t.edge, t.interval}] += per_period;
      } else {
        task_count[{t.node, t.task}] += per_period;
      }
    }
  }

  struct Payload {
    graph::EdgeId edge;
    std::size_t interval;
  };
  std::vector<Payload> payloads;
  std::vector<BipartiteEdge> bip;
  for (const auto& [key, count] : transfer_count) {
    auto [edge, interval] = key;
    Rational busy =
        count * instance.message_size * instance.platform.edge_cost(edge);
    payloads.push_back(Payload{edge, interval});
    bip.push_back(
        BipartiteEdge{graph.edge(edge).src, graph.edge(edge).dst, busy});
  }

  EdgeColoring coloring =
      color_bipartite(graph.num_nodes(), graph.num_nodes(), bip);
  if (coloring.total_duration > period) {
    throw std::logic_error(
        "build_reduce_schedule: coloring exceeds the period");
  }

  PeriodicSchedule schedule;
  schedule.period = period;
  Rational cursor(0);
  for (const ColorClass& slice : coloring.slices) {
    for (std::size_t idx : slice.edges) {
      const Payload& p = payloads[idx];
      Rational unit =
          instance.message_size * instance.platform.edge_cost(p.edge);
      CommActivity act;
      act.edge = p.edge;
      act.type = p.interval;
      act.start = cursor;
      act.end = cursor + slice.duration;
      act.messages = slice.duration / unit;
      schedule.comms.push_back(std::move(act));
    }
    cursor += slice.duration;
  }

  // Computation: per node, pack tasks sequentially ordered by produced
  // interval width (small merges first shortens the pipeline ramp-up).
  std::map<graph::NodeId, std::vector<std::pair<std::size_t, Rational>>>
      per_node;
  for (const auto& [key, count] : task_count) {
    per_node[key.first].emplace_back(key.second, count);
  }
  for (auto& [node, tasks] : per_node) {
    std::sort(tasks.begin(), tasks.end(),
              [&sp](const auto& a, const auto& b) {
                auto [ak, al, am] = sp.task(a.first);
                auto [bk, bl, bm] = sp.task(b.first);
                return std::tuple(am - ak, a.first) <
                       std::tuple(bm - bk, b.first);
              });
    Rational t(0);
    for (const auto& [task, count] : tasks) {
      Rational duration =
          count * instance.task_work / instance.platform.node_speed(node);
      CompActivity act;
      act.node = node;
      act.task = task;
      act.start = t;
      act.end = t + duration;
      act.count = count;
      t = act.end;
      schedule.comps.push_back(std::move(act));
    }
    if (t > period) {
      throw std::logic_error(
          "build_reduce_schedule: compute packing exceeds the period");
    }
  }

  if (!options.allow_split_messages && !schedule.has_integral_messages()) {
    std::vector<Rational> counts;
    counts.reserve(schedule.comms.size());
    for (const CommActivity& c : schedule.comms) counts.push_back(c.messages);
    schedule.scale(Rational(integral_period(counts)));
  }
  return schedule;
}

}  // namespace ssco::core
