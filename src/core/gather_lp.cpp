#include "core/gather_lp.h"

#include <stdexcept>

namespace ssco::core {

MultiFlow solve_gather(const platform::Platform& platform,
                       const std::vector<NodeId>& sources, NodeId sink,
                       const Rational& message_size,
                       const GatherLpOptions& options,
                       const MultiFlow* previous) {
  for (NodeId s : sources) {
    if (s == sink) {
      throw std::invalid_argument("gather: the sink cannot be a source");
    }
  }
  platform::GossipInstance gossip;
  gossip.platform = platform;
  gossip.sources = sources;
  gossip.targets = {sink};
  gossip.message_size = message_size;

  GossipLpOptions gossip_options;
  gossip_options.solver = options.solver;
  gossip_options.prune_cycles = options.prune_cycles;
  // Commodity order from solve_gossip is (source, target) pairs with the
  // single sink: exactly one commodity per source, in source order.
  return solve_gossip(gossip, gossip_options, previous);
}

}  // namespace ssco::core
