#include "core/edge_coloring.h"

#include <algorithm>
#include <stdexcept>

namespace ssco::core {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct WorkEdge {
  std::size_t u;
  std::size_t v;
  Rational weight;
  std::size_t original;  // kNone for dummy (idle-time) edges
};

/// Kuhn's augmenting-path perfect matching on the support multigraph.
/// Returns match_u[u] = index into `edges`, or empty on failure.
std::vector<std::size_t> perfect_matching(std::size_t num_nodes,
                                          const std::vector<WorkEdge>& edges) {
  std::vector<std::vector<std::size_t>> adj(num_nodes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adj[edges[i].u].push_back(i);
  }
  std::vector<std::size_t> match_u(num_nodes, kNone);  // edge index per u
  std::vector<std::size_t> match_v(num_nodes, kNone);  // edge index per v
  std::vector<bool> visited(num_nodes, false);

  auto try_augment = [&](auto&& self, std::size_t u) -> bool {
    for (std::size_t ei : adj[u]) {
      std::size_t v = edges[ei].v;
      if (visited[v]) continue;
      visited[v] = true;
      if (match_v[v] == kNone ||
          self(self, edges[match_v[v]].u)) {
        match_u[u] = ei;
        match_v[v] = ei;
        return true;
      }
    }
    return false;
  };

  for (std::size_t u = 0; u < num_nodes; ++u) {
    std::fill(visited.begin(), visited.end(), false);
    if (!try_augment(try_augment, u)) return {};
  }
  return match_u;
}

}  // namespace

EdgeColoring color_bipartite(std::size_t num_u, std::size_t num_v,
                             const std::vector<BipartiteEdge>& edges) {
  EdgeColoring result;
  result.total_duration = Rational(0);
  if (edges.empty()) return result;

  const std::size_t size = std::max(num_u, num_v);
  std::vector<WorkEdge> work;
  work.reserve(edges.size());
  std::vector<Rational> deg_u(size, Rational(0));
  std::vector<Rational> deg_v(size, Rational(0));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const BipartiteEdge& e = edges[i];
    if (e.u >= num_u || e.v >= num_v) {
      throw std::invalid_argument("color_bipartite: node index out of range");
    }
    if (e.weight.signum() <= 0) {
      throw std::invalid_argument("color_bipartite: weights must be positive");
    }
    work.push_back(WorkEdge{e.u, e.v, e.weight, i});
    deg_u[e.u] += e.weight;
    deg_v[e.v] += e.weight;
  }
  Rational delta(0);
  for (const Rational& d : deg_u) delta = Rational::max(delta, d);
  for (const Rational& d : deg_v) delta = Rational::max(delta, d);
  result.total_duration = delta;

  // Regularize with dummy (idle) edges: pair up deficits greedily. Total
  // deficit is identical on both sides, so the two scans finish together.
  {
    std::size_t ui = 0, vi = 0;
    while (true) {
      while (ui < size && deg_u[ui] == delta) ++ui;
      while (vi < size && deg_v[vi] == delta) ++vi;
      if (ui == size || vi == size) break;
      Rational fill =
          Rational::min(delta - deg_u[ui], delta - deg_v[vi]);
      work.push_back(WorkEdge{ui, vi, fill, kNone});
      deg_u[ui] += fill;
      deg_v[vi] += fill;
    }
  }

  // Peel perfect matchings.
  while (!work.empty()) {
    std::vector<std::size_t> match = perfect_matching(size, work);
    if (match.empty()) {
      throw std::logic_error(
          "color_bipartite: regular graph without perfect matching "
          "(internal invariant violated)");
    }
    Rational eps = work[match[0]].weight;
    for (std::size_t u = 0; u < size; ++u) {
      eps = Rational::min(eps, work[match[u]].weight);
    }
    ColorClass slice;
    slice.duration = eps;
    for (std::size_t u = 0; u < size; ++u) {
      WorkEdge& e = work[match[u]];
      if (e.original != kNone) slice.edges.push_back(e.original);
      e.weight -= eps;
    }
    std::sort(slice.edges.begin(), slice.edges.end());
    if (!slice.edges.empty()) {
      result.slices.push_back(std::move(slice));
    }
    // Even an all-dummy slice consumes duration; account for it by keeping
    // total_duration as Delta (already set) — slices only carry real edges.
    std::erase_if(work, [](const WorkEdge& e) { return e.weight.is_zero(); });
  }
  return result;
}

}  // namespace ssco::core
