#include "core/scatter_lp.h"

#include <stdexcept>
#include <unordered_set>

#include "core/lp_names.h"
#include "graph/paths.h"

namespace ssco::core {

namespace {

using lp::LinearExpr;
using lp::Model;
using lp::Sense;
using lp::VarId;
using platform::ScatterInstance;

constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);

/// Variable layout: var_of[k][e] = send(e, m_k); kNoVar where suppressed.
struct ScatterVars {
  std::vector<std::vector<std::size_t>> var_of;
  VarId throughput;
};

void check_instance(const ScatterInstance& instance) {
  const auto& graph = instance.platform.graph();
  if (instance.source >= graph.num_nodes()) {
    throw std::invalid_argument("scatter: bad source node");
  }
  if (instance.targets.empty()) {
    throw std::invalid_argument("scatter: no targets");
  }
  if (instance.message_size.signum() <= 0) {
    throw std::invalid_argument("scatter: message size must be positive");
  }
  std::unordered_set<NodeId> seen;
  auto reachable = graph::reachable_from(graph, instance.source);
  for (NodeId t : instance.targets) {
    if (t >= graph.num_nodes()) {
      throw std::invalid_argument("scatter: bad target node");
    }
    if (t == instance.source) {
      throw std::invalid_argument("scatter: source cannot be a target");
    }
    if (!seen.insert(t).second) {
      throw std::invalid_argument("scatter: duplicate target");
    }
    if (!reachable[t]) {
      throw std::invalid_argument("scatter: target unreachable from source");
    }
  }
}

ScatterVars declare_variables(const ScatterInstance& instance, Model& model) {
  const auto& graph = instance.platform.graph();
  ScatterVars vars;
  vars.var_of.assign(instance.targets.size(),
                     std::vector<std::size_t>(graph.num_edges(), kNoVar));
  for (std::size_t k = 0; k < instance.targets.size(); ++k) {
    const NodeId target = instance.targets[k];
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const auto& edge = graph.edge(e);
      // Useless variables: m_k leaving its target, anything entering the
      // source.
      if (edge.src == target || edge.dst == instance.source) continue;
      VarId v = model.add_variable("send_" + edge_tag(instance.platform, e) +
                                   "_m" + node_tag(instance.platform, target));
      vars.var_of[k][e] = v.index;
    }
  }
  vars.throughput = model.add_variable("TP");
  model.set_objective(vars.throughput, Rational(1));
  return vars;
}

}  // namespace

lp::Model build_scatter_lp(const ScatterInstance& instance) {
  check_instance(instance);
  const auto& graph = instance.platform.graph();
  Model model;
  ScatterVars vars = declare_variables(instance, model);

  // One-port rows (paper eq. 2-3 with eq. 4 substituted): per node, the time
  // spent sending (resp. receiving) within one time-unit is at most 1.
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    LinearExpr out_busy, in_busy;
    for (EdgeId e : graph.out_edges(n)) {
      Rational unit_time =
          instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t k = 0; k < instance.targets.size(); ++k) {
        if (vars.var_of[k][e] != kNoVar) {
          out_busy.add(VarId{vars.var_of[k][e]}, unit_time);
        }
      }
    }
    for (EdgeId e : graph.in_edges(n)) {
      Rational unit_time =
          instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t k = 0; k < instance.targets.size(); ++k) {
        if (vars.var_of[k][e] != kNoVar) {
          in_busy.add(VarId{vars.var_of[k][e]}, unit_time);
        }
      }
    }
    if (!out_busy.empty()) {
      model.add_constraint(out_busy, Sense::kLessEqual, Rational(1),
                           "oneport_out_" + node_tag(instance.platform, n));
    }
    if (!in_busy.empty()) {
      model.add_constraint(in_busy, Sense::kLessEqual, Rational(1),
                           "oneport_in_" + node_tag(instance.platform, n));
    }
  }

  // Conservation (paper eq. 5): every node that is neither the source nor
  // the type's own target forwards everything it receives.
  for (std::size_t k = 0; k < instance.targets.size(); ++k) {
    const NodeId target = instance.targets[k];
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (n == instance.source || n == target) continue;
      LinearExpr net;
      bool any = false;
      for (EdgeId e : graph.in_edges(n)) {
        if (vars.var_of[k][e] != kNoVar) {
          net.add(VarId{vars.var_of[k][e]}, Rational(1));
          any = true;
        }
      }
      for (EdgeId e : graph.out_edges(n)) {
        if (vars.var_of[k][e] != kNoVar) {
          net.add(VarId{vars.var_of[k][e]}, Rational(-1));
          any = true;
        }
      }
      if (any) {
        model.add_constraint(
            net, Sense::kEqual, Rational(0),
            "conserve_m" + node_tag(instance.platform, target) + "_n" +
                node_tag(instance.platform, n));
      }
    }
  }

  // Throughput rows (paper eq. 6): each target receives its type at rate TP.
  for (std::size_t k = 0; k < instance.targets.size(); ++k) {
    const NodeId target = instance.targets[k];
    LinearExpr delivered;
    for (EdgeId e : graph.in_edges(target)) {
      if (vars.var_of[k][e] != kNoVar) {
        delivered.add(VarId{vars.var_of[k][e]}, Rational(1));
      }
    }
    delivered.add(vars.throughput, Rational(-1));
    model.add_constraint(delivered, Sense::kEqual, Rational(0),
                         "throughput_m" + node_tag(instance.platform, target));
  }
  return model;
}

MultiFlow solve_scatter(const ScatterInstance& instance,
                        const ScatterLpOptions& options,
                        const MultiFlow* previous) {
  check_instance(instance);
  Model model = build_scatter_lp(instance);

  lp::ExactSolver solver(options.solver);
  lp::SolveContext context;
  if (previous) context.warm = previous->lp_basis;
  lp::ExactSolution sol = solver.solve(model, &context);
  if (sol.status != lp::SolveStatus::kOptimal) {
    throw std::runtime_error("scatter LP did not reach optimality: " +
                             lp::to_string(sol.status));
  }

  // Rebuild the variable layout to map the solution back (same declaration
  // order as in build_scatter_lp).
  const auto& graph = instance.platform.graph();
  MultiFlow flow;
  flow.message_size = instance.message_size;
  flow.certified = sol.certified;
  flow.lp_method = sol.method;
  flow.lp_pivots = sol.float_iterations + sol.exact_iterations;
  flow.lp_basis = std::move(context.warm);
  flow.warm_started = sol.warm_started;
  std::size_t next_var = 0;
  flow.commodities.resize(instance.targets.size());
  for (std::size_t k = 0; k < instance.targets.size(); ++k) {
    CommodityFlow& c = flow.commodities[k];
    c.origin = instance.source;
    c.destination = instance.targets[k];
    c.edge_flow.assign(graph.num_edges(), Rational(0));
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.src == instance.targets[k] || edge.dst == instance.source) {
        continue;
      }
      c.edge_flow[e] = sol.primal[next_var++];
    }
  }
  flow.throughput = sol.primal[next_var];  // TP is declared last
  for (CommodityFlow& c : flow.commodities) c.rate = flow.throughput;

  if (options.prune_cycles) flow.prune_cycles(instance.platform);
  return flow;
}

}  // namespace ssco::core
