#pragma once
// Series-of-Parallel-Prefix steady-state LP — the extension proposed in the
// paper's conclusion (Sec. 6): "each node P_i must obtain the result v[0,i]
// of the reduction limited to those processors whose rank is lower than its
// own rank".
//
// The formulation generalizes SSR(G): the same send/cons variables over
// partial values v[k,m], the same one-port/compute rows and conservation
// law, but instead of a single sink (v[0,N-1] at the target) every prefix
// v[0,i] is demanded at rate TP by participant i. Partial values are shared
// between prefixes exactly as the associativity allows — e.g. one copy of
// v[0,3] can be delivered to P_3 while another is merged into v[0,5].
//
// This module provides the optimal-throughput computation (LP + exact
// certificate); schedule realization for prefix (a DAG rather than a tree
// decomposition) is out of the paper's scope and ours.

#include "core/interval_colgen.h"
#include "core/reduce_solution.h"
#include "lp/colgen.h"
#include "lp/exact_solver.h"

namespace ssco::core {

struct PrefixLpOptions {
  lp::ExactSolverOptions solver;
  bool prune_cycles = true;
  /// Nodes allowed to compute; empty = participants.
  std::vector<NodeId> compute_nodes;
  /// Column generation over the shared reduce-family variable space — see
  /// ReduceLpOptions; the prefix master is seeded from a chain-of-prefixes
  /// plan (v[0,i-1] forwarded participant to participant, merged on
  /// arrival) plus the support of `previous`.
  ColGenMode colgen = ColGenMode::kAuto;
  std::size_t colgen_min_columns = 8192;
  lp::ColGenOptions colgen_options;
};

/// Result: a ReduceSolution-shaped table (send/cons/throughput). The
/// conservation exclusions differ from reduce (prefix sinks), so use
/// validate_prefix() below rather than ReduceSolution::validate().
/// `previous` (optional) warm-starts the solve from that solution's optimal
/// basis — see solve_scatter.
[[nodiscard]] ReduceSolution solve_prefix(
    const platform::ReduceInstance& instance,
    const PrefixLpOptions& options = {},
    const ReduceSolution* previous = nullptr);

[[nodiscard]] lp::Model build_prefix_lp(
    const platform::ReduceInstance& instance,
    const PrefixLpOptions& options = {});

/// Exact validation of the prefix constraints: one-port, compute load,
/// conservation with per-prefix demands of TP. Empty string when valid.
[[nodiscard]] std::string validate_prefix(
    const platform::ReduceInstance& instance, const ReduceSolution& solution);

}  // namespace ssco::core
