#pragma once
// Periodic schedule intermediate representation.
//
// The output of the paper's constructions (Sec. 3.3 for scatter/gossip,
// Sec. 4.3 for reduce): a period length and a set of timed activities that
// repeat every period. Communication activities transfer `messages` units of
// one message type over one edge during [start, end); computation activities
// execute `count` merge tasks on one node. The one-port model demands that
// activities sharing an out-port (edge source) or an in-port (edge
// destination) never overlap — sim/oneport_check.h verifies that, and the
// fluid simulator executes the schedule.
//
// `type` is operation-specific: the commodity index for scatter/gossip
// schedules, the IntervalSpace interval id for reduce schedules.

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "num/rational.h"

namespace ssco::core {

using num::Rational;

struct CommActivity {
  graph::EdgeId edge = graph::kInvalidId;
  std::size_t type = 0;
  Rational start;
  Rational end;
  Rational messages;
};

struct CompActivity {
  graph::NodeId node = graph::kInvalidId;
  std::size_t task = 0;  // IntervalSpace task id
  Rational start;
  Rational end;
  Rational count;
};

struct PeriodicSchedule {
  Rational period;
  std::vector<CommActivity> comms;
  std::vector<CompActivity> comps;

  /// Multiplies the period, all instants and all counts by `factor` (> 0).
  /// Used to turn a split-message schedule into a no-split one (Fig. 4(b):
  /// period 12 -> 48).
  void scale(const Rational& factor);

  /// True when every communication activity carries an integer number of
  /// messages (no message is split across time slices).
  [[nodiscard]] bool has_integral_messages() const;

  /// Messages of `type` delivered per period into `node`.
  [[nodiscard]] Rational delivered_per_period(graph::NodeId node,
                                              std::size_t type,
                                              const graph::Digraph& graph) const;

  /// Human-readable timeline (one line per activity, sorted by start time).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace ssco::core
