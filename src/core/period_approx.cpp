#include "core/period_approx.h"

#include <stdexcept>

namespace ssco::core {

PeriodApproximation approximate_period(const TreeDecomposition& decomposition,
                                       const Rational& t_fixed) {
  if (t_fixed.signum() <= 0) {
    throw std::invalid_argument("approximate_period: period must be > 0");
  }
  PeriodApproximation out;
  out.fixed_period = t_fixed;
  out.operations.reserve(decomposition.trees.size());
  Rational total_ops(0);
  for (const ReductionTree& tree : decomposition.trees) {
    // Tree weights are per-time-unit rates, so the per-period count is
    // w(T) * T_fixed, rounded down (paper: floor(w(T)/T * T_fixed) with
    // per-period weights; identical because our weights are already rates).
    num::BigInt ops = (tree.weight * t_fixed).floor();
    total_ops += Rational(ops);
    out.operations.push_back(std::move(ops));
  }
  out.achieved_throughput = total_ops / t_fixed;
  out.loss_bound =
      Rational(num::BigInt(std::uint64_t{decomposition.trees.size()})) /
      t_fixed;
  return out;
}

}  // namespace ssco::core
