#pragma once
// Column generation for the reduce-family LPs (SSR Sec. 4.2 and the
// parallel-prefix extension of Sec. 6).
//
// Both formulations share the quadratic variable space that makes large-N
// instances expensive to materialize: one send variable per (adjacent
// interval, edge) — O(N^2 * |E|) of them — plus merge-task placements
// cons(node, T(k,l,m)). Their optimum touches a few hundred. This module
// is the structural PricingOracle the colgen driver (lp/colgen.h) runs
// against:
//
//  * build_master() ENUMERATES the complete row skeleton of the full model
//    — identical names, senses and right-hand sides to the dense builders
//    in reduce_lp.cpp / prefix_lp.cpp — but materializes only the rows the
//    seed columns (heuristic reduction-tree plans, the support of a
//    previous solution) and the TP column touch: the oracle is also a ROW
//    generator (full_row_count/row_spec), so the colgen driver activates
//    the remaining rows lazily as priced-in columns first reference them.
//    Every skeleton row is zero-feasible (<= with rhs 1, == with rhs 0),
//    which is what lets a master solution extend to the full model with
//    zeros over absent columns AND inactive rows, and lets master duals —
//    lifted with zeros — price absent columns;
//  * price() / price_exact() walk the implicit (interval, edge) send grid
//    and the (node, task) cons grid in one structured pass, deriving each
//    column's four-row support from the skeleton instead of from any
//    materialized matrix;
//  * generated columns carry exactly the names the dense builders would
//    have used, so warm-start snapshots map across dense and colgen builds
//    interchangeably.
//
// The two families differ only in the sink rule (reduce: v[0,N-1] absorbed
// at the target; prefix: every v[0,i] absorbed at participant i) and the
// matching suppression rule, parameterized here rather than duplicated.
// Gossip and scatter stay on the dense path by design: their column count
// is linear in sources x edges, so a restricted master would only add
// rounds (measured in DESIGN.md "Column generation").

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/intervals.h"
#include "core/reduce_solution.h"
#include "lp/colgen.h"
#include "platform/paper_instances.h"

namespace ssco::core {

/// Column-generation policy of the reduce-family solvers.
enum class ColGenMode {
  /// Use column generation when the full model exceeds the option's column
  /// threshold; dense below it (small models certify faster dense).
  kAuto,
  kAlways,
  kNever,
};

/// Seed hints for a restricted master: (interval, edge) send pairs and
/// (node, task) merge placements.
struct IntervalSeeds {
  std::vector<std::pair<std::size_t, EdgeId>> send;
  std::vector<std::pair<NodeId, std::size_t>> cons;
};

class IntervalFlowOracle final : public lp::PricingOracle {
 public:
  enum class Family { kReduce, kPrefix };

  /// `instance` must outlive the oracle and already be validated by the
  /// caller (check_instance of the respective builder); `compute_nodes`
  /// resolved the same way the dense builder resolves them.
  IntervalFlowOracle(const platform::ReduceInstance& instance, Family family,
                     std::vector<NodeId> compute_nodes);

  /// Builds the restricted master: the full row skeleton over the seed
  /// columns only, plus the TP column. Seed hints are deduplicated and
  /// sorted (deterministic master layout); suppressed pairs are dropped;
  /// out-of-range hints throw. Call exactly once.
  [[nodiscard]] lp::Model build_master(
      std::vector<std::pair<std::size_t, EdgeId>> send_seed,
      std::vector<std::pair<NodeId, std::size_t>> cons_seed);
  [[nodiscard]] lp::Model build_master(IntervalSeeds seeds) {
    return build_master(std::move(seeds.send), std::move(seeds.cons));
  }

  // --- lp::PricingOracle --------------------------------------------------
  [[nodiscard]] std::size_t total_columns() const override {
    return total_columns_;
  }
  /// Row generation: the full row skeleton is enumerated (names, senses,
  /// right-hand sides) but NOT materialized by build_master — the master
  /// starts with only the rows its seed columns and the TP column touch
  /// (at n=256 that leaves ~10k conservation/one-port rows out), and the
  /// colgen driver activates the rest lazily as priced-in columns first
  /// reference them. All emitted column entries are in FULL row ids.
  [[nodiscard]] std::size_t full_row_count() const override {
    return row_specs_.size();
  }
  [[nodiscard]] lp::GeneratedRow row_spec(
      std::size_t full_row) const override {
    return row_specs_[full_row];
  }
  [[nodiscard]] std::vector<std::size_t> master_row_origins() const override {
    return master_row_origins_;
  }
  void price(const std::vector<double>& y, double tolerance,
             std::size_t max_columns,
             std::vector<lp::GeneratedColumn>& out) override;
  void price_exact(const std::vector<Rational>& y, std::size_t max_columns,
                   std::vector<lp::GeneratedColumn>& out) override;
  void added(const lp::GeneratedColumn& column, lp::VarId var) override;
  void materialize_all(std::vector<lp::GeneratedColumn>& out) override;
  /// Shards the price()/price_exact() grid scans across the solve's pool.
  /// Candidates are collected per shard and merged shard-major — the exact
  /// serial scan order — so the emitted column list is bit-identical to a
  /// serial sweep at every thread count (see price_exact for the truncation
  /// argument).
  void set_parallel(const lp::Parallel& parallel) override {
    par_ = parallel;
  }

  /// Maps a master-space primal onto the solution tables (send, cons,
  /// throughput); absent columns are zero.
  void extract(const std::vector<Rational>& primal, ReduceSolution& out) const;

  /// Resolves structural column NAMES — a previous basis snapshot — back to
  /// seed hints. A warm re-solve must seed these explicitly: the previous
  /// SOLUTION tables miss every degenerate basic column (they sit at zero),
  /// and a master without them maps the old basis onto a singular
  /// selection. Unknown names are ignored. Call before build_master.
  void seed_hints_from_names(
      const std::vector<std::string>& names,
      std::vector<std::pair<std::size_t, EdgeId>>& send_seed,
      std::vector<std::pair<NodeId, std::size_t>>& cons_seed) const;

  [[nodiscard]] const IntervalSpace& space() const { return sp_; }

  /// Columns of the full model, computed without building anything — the
  /// kAuto policy check.
  [[nodiscard]] static std::size_t full_model_columns(
      const platform::ReduceInstance& instance, Family family,
      std::size_t num_compute_nodes);

  /// Shared column-generation dispatch of solve_reduce / solve_prefix.
  /// Decides colgen vs dense from `mode` and the column threshold; when
  /// colgen applies, seeds the master (`heuristic_seeds()` — a callback so
  /// dense solves never pay the heuristic's Dijkstra runs — plus, on a
  /// warm re-solve, the previous solution's support and basis names), runs
  /// ExactSolver::solve_colgen with `context`, and extracts the solution
  /// tables into `out` (only when optimal). Returns the ExactSolution, or
  /// nullopt when the caller should take its dense path; the caller owns
  /// the non-optimal error contract — check the returned status.
  [[nodiscard]] static std::optional<lp::ExactSolution> try_solve(
      const platform::ReduceInstance& instance, Family family,
      const std::vector<NodeId>& compute_nodes, ColGenMode mode,
      std::size_t min_columns, const lp::ColGenOptions& colgen_options,
      const lp::ExactSolver& solver, lp::SolveContext& context,
      const std::function<IntervalSeeds()>& heuristic_seeds,
      const ReduceSolution* previous, ReduceSolution& out);

 private:
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  static constexpr std::size_t kSuppressed = static_cast<std::size_t>(-2);

  [[nodiscard]] bool suppressed(std::size_t interval_id,
                                const graph::Edge& edge) const;
  [[nodiscard]] std::vector<std::pair<std::size_t, Rational>> send_entries(
      std::size_t interval_id, EdgeId e) const;
  [[nodiscard]] std::vector<std::pair<std::size_t, Rational>> cons_entries(
      NodeId node, std::size_t task) const;
  [[nodiscard]] std::string send_name(std::size_t interval_id, EdgeId e) const;
  [[nodiscard]] std::string cons_name(NodeId node, std::size_t task) const;
  [[nodiscard]] lp::GeneratedColumn make_send(std::size_t interval_id,
                                              EdgeId e) const;
  [[nodiscard]] lp::GeneratedColumn make_cons(NodeId node,
                                              std::size_t task) const;
  /// Registers a seeded/appended column's identity at the next var index.
  void register_var(std::uint64_t tag, std::size_t var);

  const platform::ReduceInstance& instance_;
  Family family_;
  IntervalSpace sp_;
  lp::Parallel par_;  // serial unless the colgen driver hands us a pool
  std::vector<NodeId> compute_nodes_;
  std::vector<char> is_compute_;

  // Full row skeleton (FULL row ids into row_specs_; kNoRow where the full
  // model has no such row).
  std::vector<std::size_t> op_out_row_;
  std::vector<std::size_t> op_in_row_;
  std::vector<std::size_t> compute_row_;
  std::vector<std::vector<std::size_t>> conserve_row_;  // [interval][node]
  /// Name/sense/rhs of every full-model row, indexed by full row id.
  std::vector<lp::GeneratedRow> row_specs_;
  /// Full row id behind each master row of the freshly built master (the
  /// rows the seed columns and TP touch), in master row order.
  std::vector<std::size_t> master_row_origins_;

  // Column registry: master var index per implicit column, or kAbsent /
  // kSuppressed; identity tags per master var (for extract()).
  std::vector<std::vector<std::size_t>> send_var_;  // [interval][edge]
  std::vector<std::vector<std::size_t>> cons_var_;  // [node][task]
  std::vector<std::uint64_t> var_tags_;
  std::size_t total_columns_ = 0;

  // Cached per-edge / per-node units (message_size * cost, work / speed).
  std::vector<Rational> edge_unit_;
  std::vector<double> edge_unit_d_;
  std::vector<Rational> node_unit_;
  std::vector<double> node_unit_d_;
};

}  // namespace ssco::core
