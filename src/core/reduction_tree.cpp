#include "core/reduction_tree.h"

#include <map>
#include <sstream>

namespace ssco::core {

namespace {

using Location = std::pair<std::size_t, graph::NodeId>;  // (interval, node)

}  // namespace

std::string ReductionTree::validate(
    const platform::ReduceInstance& instance) const {
  const IntervalSpace sp(instance.participants.size());
  const auto& graph = instance.platform.graph();

  // produced - consumed per (interval, node); the root demand consumes one
  // (full, target); singleton supplies cover deficits at their owners.
  std::map<Location, long> balance;
  for (const TreeTask& t : tasks) {
    if (t.kind == TreeTask::Kind::kTransfer) {
      if (t.edge >= graph.num_edges()) return "transfer: bad edge";
      if (t.interval >= sp.num_intervals()) return "transfer: bad interval";
      const auto& e = graph.edge(t.edge);
      balance[{t.interval, e.dst}] += 1;
      balance[{t.interval, e.src}] -= 1;
    } else {
      if (t.node >= graph.num_nodes()) return "compute: bad node";
      if (t.task >= sp.num_tasks()) return "compute: bad task";
      auto [k, l, m] = sp.task(t.task);
      balance[{sp.interval_id(k, m), t.node}] += 1;
      balance[{sp.interval_id(k, l), t.node}] -= 1;
      balance[{sp.interval_id(l + 1, m), t.node}] -= 1;
    }
  }
  balance[{sp.full_interval_id(), instance.target}] -= 1;

  for (const auto& [loc, net] : balance) {
    auto [iv, node] = loc;
    auto [k, m] = sp.interval(iv);
    const bool own_singleton = k == m && instance.participants[k] == node;
    if (own_singleton) {
      if (net > 0) {
        return "singleton v[" + std::to_string(k) +
               "] over-produced at its owner";
      }
      continue;  // deficit drawn from the unlimited local supply
    }
    if (net != 0) {
      return "value v[" + std::to_string(k) + "," + std::to_string(m) +
             "] at node " + std::to_string(node) +
             (net > 0 ? " produced but never used" : " used but not produced");
    }
  }

  // Acyclicity of per-interval transfer chains: a cycle would make the task
  // list impossible to execute (each value exists once per operation).
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    std::map<graph::NodeId, graph::NodeId> next;
    for (const TreeTask& t : tasks) {
      if (t.kind != TreeTask::Kind::kTransfer || t.interval != iv) continue;
      const auto& e = graph.edge(t.edge);
      if (next.contains(e.src)) {
        return "interval forked along two transfers from one node";
      }
      next[e.src] = e.dst;
    }
    for (auto [start, unused] : next) {
      (void)unused;
      graph::NodeId cur = start;
      std::size_t steps = 0;
      while (next.contains(cur)) {
        cur = next[cur];
        if (++steps > next.size()) return "transfer cycle detected";
      }
    }
  }
  return {};
}

Rational ReductionTree::bottleneck_time(
    const platform::ReduceInstance& instance) const {
  const auto& graph = instance.platform.graph();
  std::map<graph::NodeId, Rational> out_busy, in_busy, cpu_busy;
  for (const TreeTask& t : tasks) {
    if (t.kind == TreeTask::Kind::kTransfer) {
      const auto& e = graph.edge(t.edge);
      Rational time =
          instance.message_size * instance.platform.edge_cost(t.edge);
      out_busy[e.src] += time;
      in_busy[e.dst] += time;
    } else {
      cpu_busy[t.node] +=
          instance.task_work / instance.platform.node_speed(t.node);
    }
  }
  Rational worst(0);
  for (const auto& [n, v] : out_busy) worst = Rational::max(worst, v);
  for (const auto& [n, v] : in_busy) worst = Rational::max(worst, v);
  for (const auto& [n, v] : cpu_busy) worst = Rational::max(worst, v);
  return worst;
}

std::string ReductionTree::to_string(
    const platform::ReduceInstance& instance) const {
  const IntervalSpace sp(instance.participants.size());
  const auto& graph = instance.platform.graph();
  std::ostringstream os;
  os << "tree (throughput " << weight << "):\n";
  for (const TreeTask& t : tasks) {
    if (t.kind == TreeTask::Kind::kTransfer) {
      auto [k, m] = sp.interval(t.interval);
      const auto& e = graph.edge(t.edge);
      os << "  transfer [" << k << "," << m << "]  " << e.src << " -> "
         << e.dst << "\n";
    } else {
      auto [k, l, m] = sp.task(t.task);
      os << "  cons[" << k << "," << l << "," << m << "] in node " << t.node
         << "\n";
    }
  }
  return os.str();
}

}  // namespace ssco::core
