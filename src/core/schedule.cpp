#include "core/schedule.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ssco::core {

void PeriodicSchedule::scale(const Rational& factor) {
  if (factor.signum() <= 0) {
    throw std::invalid_argument("PeriodicSchedule::scale: factor must be > 0");
  }
  period *= factor;
  for (CommActivity& c : comms) {
    c.start *= factor;
    c.end *= factor;
    c.messages *= factor;
  }
  for (CompActivity& c : comps) {
    c.start *= factor;
    c.end *= factor;
    c.count *= factor;
  }
}

bool PeriodicSchedule::has_integral_messages() const {
  return std::all_of(comms.begin(), comms.end(), [](const CommActivity& c) {
    return c.messages.is_integer();
  });
}

Rational PeriodicSchedule::delivered_per_period(
    graph::NodeId node, std::size_t type, const graph::Digraph& graph) const {
  Rational total(0);
  for (const CommActivity& c : comms) {
    if (c.type == type && graph.edge(c.edge).dst == node) {
      total += c.messages;
    }
  }
  return total;
}

std::string PeriodicSchedule::to_string() const {
  struct Line {
    Rational start;
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(comms.size() + comps.size());
  for (const CommActivity& c : comms) {
    std::ostringstream os;
    os << "[" << c.start << ", " << c.end << ")  comm edge#" << c.edge
       << " type#" << c.type << " x" << c.messages;
    lines.push_back({c.start, os.str()});
  }
  for (const CompActivity& c : comps) {
    std::ostringstream os;
    os << "[" << c.start << ", " << c.end << ")  comp node#" << c.node
       << " task#" << c.task << " x" << c.count;
    lines.push_back({c.start, os.str()});
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.start < b.start; });
  std::ostringstream os;
  os << "period = " << period << "\n";
  for (const Line& l : lines) os << l.text << "\n";
  return os.str();
}

}  // namespace ssco::core
