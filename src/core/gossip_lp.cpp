#include "core/gossip_lp.h"

#include <stdexcept>
#include <unordered_set>

#include "core/lp_names.h"
#include "graph/paths.h"

namespace ssco::core {

namespace {

using lp::LinearExpr;
using lp::Model;
using lp::Sense;
using lp::VarId;
using platform::GossipInstance;

constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);

struct Pair {
  NodeId src;
  NodeId dst;
};

std::vector<Pair> commodity_pairs(const GossipInstance& instance) {
  std::vector<Pair> pairs;
  for (NodeId s : instance.sources) {
    for (NodeId t : instance.targets) {
      if (s != t) pairs.push_back({s, t});
    }
  }
  return pairs;
}

void check_instance(const GossipInstance& instance) {
  const auto& graph = instance.platform.graph();
  if (instance.sources.empty() || instance.targets.empty()) {
    throw std::invalid_argument("gossip: need sources and targets");
  }
  if (instance.message_size.signum() <= 0) {
    throw std::invalid_argument("gossip: message size must be positive");
  }
  auto check_nodes = [&graph](const std::vector<NodeId>& nodes,
                              const char* what) {
    std::unordered_set<NodeId> seen;
    for (NodeId n : nodes) {
      if (n >= graph.num_nodes()) {
        throw std::invalid_argument(std::string("gossip: bad ") + what);
      }
      if (!seen.insert(n).second) {
        throw std::invalid_argument(std::string("gossip: duplicate ") + what);
      }
    }
  };
  check_nodes(instance.sources, "source");
  check_nodes(instance.targets, "target");
  for (NodeId s : instance.sources) {
    auto reachable = graph::reachable_from(graph, s);
    for (NodeId t : instance.targets) {
      if (s != t && !reachable[t]) {
        throw std::invalid_argument("gossip: target unreachable from source");
      }
    }
  }
}

}  // namespace

lp::Model build_gossip_lp(const GossipInstance& instance) {
  check_instance(instance);
  const auto& graph = instance.platform.graph();
  const std::vector<Pair> pairs = commodity_pairs(instance);

  Model model;
  // var_of[p][e] = send(e, m_{pair p}).
  std::vector<std::vector<std::size_t>> var_of(
      pairs.size(), std::vector<std::size_t>(graph.num_edges(), kNoVar));
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.src == pairs[p].dst || edge.dst == pairs[p].src) continue;
      VarId v = model.add_variable(
          "send_" + edge_tag(instance.platform, e) + "_p" +
          node_tag(instance.platform, pairs[p].src) + "." +
          node_tag(instance.platform, pairs[p].dst));
      var_of[p][e] = v.index;
    }
  }
  VarId tp = model.add_variable("TP");
  model.set_objective(tp, Rational(1));

  // One-port rows.
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    LinearExpr out_busy, in_busy;
    for (EdgeId e : graph.out_edges(n)) {
      Rational unit = instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t p = 0; p < pairs.size(); ++p) {
        if (var_of[p][e] != kNoVar) out_busy.add(VarId{var_of[p][e]}, unit);
      }
    }
    for (EdgeId e : graph.in_edges(n)) {
      Rational unit = instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t p = 0; p < pairs.size(); ++p) {
        if (var_of[p][e] != kNoVar) in_busy.add(VarId{var_of[p][e]}, unit);
      }
    }
    if (!out_busy.empty()) {
      model.add_constraint(out_busy, Sense::kLessEqual, Rational(1),
                           "oneport_out_" + node_tag(instance.platform, n));
    }
    if (!in_busy.empty()) {
      model.add_constraint(in_busy, Sense::kLessEqual, Rational(1),
                           "oneport_in_" + node_tag(instance.platform, n));
    }
  }

  // Conservation per pair at every node except the pair's endpoints.
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (n == pairs[p].src || n == pairs[p].dst) continue;
      LinearExpr net;
      bool any = false;
      for (EdgeId e : graph.in_edges(n)) {
        if (var_of[p][e] != kNoVar) {
          net.add(VarId{var_of[p][e]}, Rational(1));
          any = true;
        }
      }
      for (EdgeId e : graph.out_edges(n)) {
        if (var_of[p][e] != kNoVar) {
          net.add(VarId{var_of[p][e]}, Rational(-1));
          any = true;
        }
      }
      if (any) {
        model.add_constraint(
            net, Sense::kEqual, Rational(0),
            "conserve_p" + node_tag(instance.platform, pairs[p].src) + "." +
                node_tag(instance.platform, pairs[p].dst) + "_n" +
                node_tag(instance.platform, n));
      }
    }
  }

  // Delivery rows: each pair delivers at the common rate TP.
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    LinearExpr delivered;
    for (EdgeId e : graph.in_edges(pairs[p].dst)) {
      if (var_of[p][e] != kNoVar) delivered.add(VarId{var_of[p][e]}, Rational(1));
    }
    delivered.add(tp, Rational(-1));
    model.add_constraint(
        delivered, Sense::kEqual, Rational(0),
        "throughput_p" + node_tag(instance.platform, pairs[p].src) + "." +
            node_tag(instance.platform, pairs[p].dst));
  }
  return model;
}

MultiFlow solve_gossip(const GossipInstance& instance,
                       const GossipLpOptions& options,
                       const MultiFlow* previous) {
  check_instance(instance);
  Model model = build_gossip_lp(instance);

  lp::ExactSolver solver(options.solver);
  lp::SolveContext context;
  if (previous) context.warm = previous->lp_basis;
  lp::ExactSolution sol = solver.solve(model, &context);
  if (sol.status != lp::SolveStatus::kOptimal) {
    throw std::runtime_error("gossip LP did not reach optimality: " +
                             lp::to_string(sol.status));
  }

  const auto& graph = instance.platform.graph();
  const std::vector<Pair> pairs = commodity_pairs(instance);
  MultiFlow flow;
  flow.message_size = instance.message_size;
  flow.certified = sol.certified;
  flow.lp_method = sol.method;
  flow.lp_pivots = sol.float_iterations + sol.exact_iterations;
  flow.lp_basis = std::move(context.warm);
  flow.warm_started = sol.warm_started;
  flow.commodities.resize(pairs.size());
  std::size_t next_var = 0;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    CommodityFlow& c = flow.commodities[p];
    c.origin = pairs[p].src;
    c.destination = pairs[p].dst;
    c.edge_flow.assign(graph.num_edges(), Rational(0));
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const auto& edge = graph.edge(e);
      if (edge.src == pairs[p].dst || edge.dst == pairs[p].src) continue;
      c.edge_flow[e] = sol.primal[next_var++];
    }
  }
  flow.throughput = sol.primal[next_var];
  for (CommodityFlow& c : flow.commodities) c.rate = flow.throughput;

  if (options.prune_cycles) flow.prune_cycles(instance.platform);
  return flow;
}

}  // namespace ssco::core
