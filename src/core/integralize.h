#pragma once
// Period computation: the LCM-of-denominators step of Sec. 3.1 / 4.2.
//
// The LP solutions are rational rates per time-unit; multiplying by the least
// common multiple T of all denominators yields integer message counts (and
// task counts) per period T — the quantity the schedule builders and the
// paper's figures work with (Fig. 2's "values for a period of 12").

#include "core/flow_solution.h"
#include "core/reduce_solution.h"
#include "num/bigint.h"

namespace ssco::core {

/// Smallest period making every commodity edge-flow integral (>= 1).
[[nodiscard]] num::BigInt integral_period(const MultiFlow& flow);

/// Smallest period making every send/cons value and TP integral (>= 1).
[[nodiscard]] num::BigInt integral_period(const ReduceSolution& solution);

/// Smallest period making every weight in `weights` integral (>= 1).
[[nodiscard]] num::BigInt integral_period(const std::vector<Rational>& weights);

}  // namespace ssco::core
