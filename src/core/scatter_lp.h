#pragma once
// Series-of-Scatters steady-state LP — SSSP(G), paper Sec. 3.1.
//
// One source streams distinct same-size messages to every target; we maximize
// the common delivery rate TP under the bidirectional one-port model. The
// builder produces the exact LP of the paper with two mechanical
// simplifications that change neither feasibility nor optimum:
//  * the occupation variables s(Pi->Pj) are substituted by their defining
//    equality (paper eq. 4), so one-port rows are written directly over the
//    send(...) variables;
//  * flow variables that provably carry no useful traffic (type m_k leaving
//    its own target, or any type entering the source) are not created.
//
// The 0 <= s <= 1 box constraints (paper eq. 1) are implied by the one-port
// rows (eq. 2-3) given non-negativity, so they need no extra rows.

#include "core/flow_solution.h"
#include "lp/exact_solver.h"
#include "platform/paper_instances.h"

namespace ssco::core {

struct ScatterLpOptions {
  lp::ExactSolverOptions solver;
  /// Cancel useless flow cycles in the returned solution (recommended; the
  /// schedule builder requires cycle-free flows).
  bool prune_cycles = true;
};

/// Builds SSSP(G) for the instance. Exposed separately from solve() so tests
/// and the LP-format writer can inspect the model.
[[nodiscard]] lp::Model build_scatter_lp(
    const platform::ScatterInstance& instance);

/// Solves the steady-state scatter problem; commodity i of the result is
/// instance.targets[i]'s message type.
/// Throws std::invalid_argument when some target is unreachable (the LP would
/// be feasible only with TP = 0) or roles are malformed.
///
/// `previous` (optional) warm-starts the solve from that solution's optimal
/// basis (lp/dual_simplex.h) — the incremental path for a platform that
/// changed under a live plan. Exactness is unaffected: the result passes
/// the same certificates as a cold solve.
[[nodiscard]] MultiFlow solve_scatter(const platform::ScatterInstance& instance,
                                      const ScatterLpOptions& options = {},
                                      const MultiFlow* previous = nullptr);

}  // namespace ssco::core
