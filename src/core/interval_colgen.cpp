#include "core/interval_colgen.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/lp_names.h"

namespace ssco::core {

namespace {

using lp::GeneratedColumn;
using lp::LinearExpr;
using lp::Model;
using lp::RowId;
using lp::Sense;

// Identity tags: kind in the top bits, the two coordinates below. Node,
// edge, interval and task counts all fit 30 bits with room to spare.
constexpr std::uint64_t kSendTag = 0;
constexpr std::uint64_t kConsTag = 1;
constexpr std::uint64_t kTpTag = 2;

std::uint64_t make_tag(std::uint64_t kind, std::uint64_t a, std::uint64_t b) {
  return (kind << 62) | (a << 31) | b;
}
std::uint64_t tag_kind(std::uint64_t tag) { return tag >> 62; }
std::uint64_t tag_a(std::uint64_t tag) { return (tag >> 31) & 0x7fffffffu; }
std::uint64_t tag_b(std::uint64_t tag) { return tag & 0x7fffffffu; }

bool family_suppressed(const platform::ReduceInstance& instance,
                       IntervalFlowOracle::Family family,
                       const IntervalSpace& sp, std::size_t interval_id,
                       const graph::Edge& edge) {
  auto [k, m] = sp.interval(interval_id);
  // A singleton flowing into its own owner duplicates the local supply.
  if (k == m && edge.dst == instance.participants[k]) return true;
  if (interval_id == sp.full_interval_id()) {
    // The complete result never usefully leaves its unique consumer.
    const NodeId consumer = family == IntervalFlowOracle::Family::kReduce
                                ? instance.target
                                : instance.participants.back();
    if (edge.src == consumer) return true;
  }
  return false;
}

}  // namespace

IntervalFlowOracle::IntervalFlowOracle(
    const platform::ReduceInstance& instance, Family family,
    std::vector<NodeId> compute_nodes)
    : instance_(instance),
      family_(family),
      sp_(instance.participants.size()),
      compute_nodes_(std::move(compute_nodes)) {
  const auto& graph = instance_.platform.graph();
  is_compute_.assign(graph.num_nodes(), 0);
  for (NodeId n : compute_nodes_) is_compute_[n] = 1;

  edge_unit_.resize(graph.num_edges());
  edge_unit_d_.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edge_unit_[e] = instance_.message_size * instance_.platform.edge_cost(e);
    edge_unit_d_[e] = edge_unit_[e].to_double();
  }
  node_unit_.assign(graph.num_nodes(), Rational(0));
  node_unit_d_.assign(graph.num_nodes(), 0.0);
  for (NodeId n : compute_nodes_) {
    node_unit_[n] = instance_.task_work / instance_.platform.node_speed(n);
    node_unit_d_[n] = node_unit_[n].to_double();
  }

  // Presence tables: suppression is decided once, here; everything absent
  // until build_master seeds it or the driver reports an append.
  send_var_.assign(sp_.num_intervals(),
                   std::vector<std::size_t>(graph.num_edges(), kAbsent));
  std::size_t sends = 0;
  for (std::size_t iv = 0; iv < sp_.num_intervals(); ++iv) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (suppressed(iv, graph.edge(e))) {
        send_var_[iv][e] = kSuppressed;
      } else {
        ++sends;
      }
    }
  }
  cons_var_.assign(graph.num_nodes(), {});
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    cons_var_[n].assign(sp_.num_tasks(),
                        is_compute_[n] ? kAbsent : kSuppressed);
  }
  total_columns_ = sends + compute_nodes_.size() * sp_.num_tasks() + 1;
}

bool IntervalFlowOracle::suppressed(std::size_t interval_id,
                                    const graph::Edge& edge) const {
  return family_suppressed(instance_, family_, sp_, interval_id, edge);
}

std::size_t IntervalFlowOracle::full_model_columns(
    const platform::ReduceInstance& instance, Family family,
    std::size_t num_compute_nodes) {
  const IntervalSpace sp(instance.participants.size());
  const auto& graph = instance.platform.graph();
  std::size_t sends = 0;
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (!family_suppressed(instance, family, sp, iv, graph.edge(e))) {
        ++sends;
      }
    }
  }
  return sends + num_compute_nodes * sp.num_tasks() + 1;
}

lp::Model IntervalFlowOracle::build_master(
    std::vector<std::pair<std::size_t, EdgeId>> send_seed,
    std::vector<std::pair<NodeId, std::size_t>> cons_seed) {
  const auto& graph = instance_.platform.graph();
  Model model;

  // --- Row skeleton: the COMPLETE row set of the full model, ENUMERATED in
  // exactly the dense builder's order and names but not materialized — rows
  // get full row ids into row_specs_, and only the ones touched by seed
  // columns below land in the master (the colgen driver activates the rest
  // lazily; see the header comment). Emission follows the FULL variable
  // pattern — a row whose support is entirely absent from the master must
  // still be priceable, or the oracle's dual lookups would misindex.
  auto add_row = [&](Sense sense, Rational rhs, std::string name) {
    row_specs_.push_back({std::move(name), sense, std::move(rhs)});
    return row_specs_.size() - 1;
  };
  op_out_row_.assign(graph.num_nodes(), kNoRow);
  op_in_row_.assign(graph.num_nodes(), kNoRow);
  compute_row_.assign(graph.num_nodes(), kNoRow);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    auto port_any = [&](auto&& edges) {
      for (EdgeId e : edges) {
        for (std::size_t iv = 0; iv < sp_.num_intervals(); ++iv) {
          if (send_var_[iv][e] != kSuppressed) return true;
        }
      }
      return false;
    };
    if (port_any(graph.out_edges(n))) {
      op_out_row_[n] =
          add_row(Sense::kLessEqual, Rational(1),
                  "oneport_out_" + node_tag(instance_.platform, n));
    }
    if (port_any(graph.in_edges(n))) {
      op_in_row_[n] = add_row(Sense::kLessEqual, Rational(1),
                              "oneport_in_" + node_tag(instance_.platform, n));
    }
  }
  for (NodeId n : compute_nodes_) {
    compute_row_[n] = add_row(Sense::kLessEqual, Rational(1),
                              "compute_" + node_tag(instance_.platform, n));
  }
  conserve_row_.assign(sp_.num_intervals(),
                       std::vector<std::size_t>(graph.num_nodes(), kNoRow));
  std::vector<std::size_t> sink_rows;
  for (std::size_t iv = 0; iv < sp_.num_intervals(); ++iv) {
    auto [k, m] = sp_.interval(iv);
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      const bool own_singleton = k == m && instance_.participants[k] == node;
      if (own_singleton) continue;  // unlimited local supply
      const bool sink = family_ == Family::kReduce
                            ? (iv == sp_.full_interval_id() &&
                               node == instance_.target)
                            : (k == 0 && instance_.participants[m] == node);
      bool any = false;
      if (!sink) {
        for (EdgeId e : graph.in_edges(node)) {
          if (send_var_[iv][e] != kSuppressed) {
            any = true;
            break;
          }
        }
        if (!any) {
          for (EdgeId e : graph.out_edges(node)) {
            if (send_var_[iv][e] != kSuppressed) {
              any = true;
              break;
            }
          }
        }
        if (!any && is_compute_[node] && sp_.num_tasks() > 0) {
          any = m > k || m + 1 < sp_.n() || k > 0;
        }
        if (!any) continue;
      }
      std::string name;
      if (!sink) {
        name = "conserve_v" + std::to_string(k) + "_" + std::to_string(m) +
               "_n" + node_tag(instance_.platform, node);
      } else if (family_ == Family::kReduce) {
        name = "throughput";
      } else {
        name = "prefix_demand_" + std::to_string(m);
      }
      conserve_row_[iv][node] =
          add_row(Sense::kEqual, Rational(0), std::move(name));
      if (sink) sink_rows.push_back(conserve_row_[iv][node]);
    }
  }

  // --- Seed columns, deterministic order; then TP. ------------------------
  std::sort(send_seed.begin(), send_seed.end());
  send_seed.erase(std::unique(send_seed.begin(), send_seed.end()),
                  send_seed.end());
  std::sort(cons_seed.begin(), cons_seed.end());
  cons_seed.erase(std::unique(cons_seed.begin(), cons_seed.end()),
                  cons_seed.end());

  // Seed columns carry FULL row ids; the master row for a full row is
  // created on first touch (first-touch order of the deterministic seed
  // sequence — the same activation discipline the driver follows later).
  std::vector<std::size_t> full_to_master(row_specs_.size(), kNoRow);
  auto append = [&](const GeneratedColumn& gc) {
    std::vector<std::pair<RowId, Rational>> rows;
    rows.reserve(gc.entries.size());
    for (const auto& [row, coeff] : gc.entries) {
      if (full_to_master[row] == kNoRow) {
        const lp::GeneratedRow& spec = row_specs_[row];
        full_to_master[row] =
            model.add_constraint(LinearExpr{}, spec.sense, spec.rhs, spec.name)
                .index;
        master_row_origins_.push_back(row);
      }
      rows.emplace_back(RowId{full_to_master[row]}, coeff);
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.first.index < b.first.index;
    });
    lp::VarId v = model.add_column(gc.name, gc.objective, rows);
    added(gc, v);
  };

  for (const auto& [iv, e] : send_seed) {
    if (iv >= sp_.num_intervals() || e >= graph.num_edges()) {
      throw std::out_of_range("interval colgen: bad send seed");
    }
    if (send_var_[iv][e] != kAbsent) continue;  // suppressed or duplicate
    append(make_send(iv, e));
  }
  for (const auto& [node, task] : cons_seed) {
    if (node >= graph.num_nodes() || task >= sp_.num_tasks()) {
      throw std::out_of_range("interval colgen: bad cons seed");
    }
    if (cons_var_[node][task] != kAbsent) continue;
    append(make_cons(node, task));
  }

  GeneratedColumn tp;
  tp.name = "TP";
  tp.objective = Rational(1);
  tp.tag = make_tag(kTpTag, 0, 0);
  for (std::size_t row : sink_rows) {
    tp.entries.emplace_back(row, Rational(-1));
  }
  append(tp);
  return model;
}

std::vector<std::pair<std::size_t, Rational>>
IntervalFlowOracle::send_entries(std::size_t interval_id, EdgeId e) const {
  const auto& edge = instance_.platform.graph().edge(e);
  std::vector<std::pair<std::size_t, Rational>> entries;
  entries.reserve(4);
  if (op_out_row_[edge.src] != kNoRow) {
    entries.emplace_back(op_out_row_[edge.src], edge_unit_[e]);
  }
  if (op_in_row_[edge.dst] != kNoRow) {
    entries.emplace_back(op_in_row_[edge.dst], edge_unit_[e]);
  }
  if (conserve_row_[interval_id][edge.dst] != kNoRow) {
    entries.emplace_back(conserve_row_[interval_id][edge.dst], Rational(1));
  }
  if (conserve_row_[interval_id][edge.src] != kNoRow) {
    entries.emplace_back(conserve_row_[interval_id][edge.src], Rational(-1));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::vector<std::pair<std::size_t, Rational>>
IntervalFlowOracle::cons_entries(NodeId node, std::size_t task) const {
  auto [k, l, m] = sp_.task(task);
  std::vector<std::pair<std::size_t, Rational>> entries;
  entries.reserve(4);
  entries.emplace_back(compute_row_[node], node_unit_[node]);
  if (conserve_row_[sp_.interval_id(k, m)][node] != kNoRow) {
    entries.emplace_back(conserve_row_[sp_.interval_id(k, m)][node],
                         Rational(1));
  }
  if (conserve_row_[sp_.interval_id(k, l)][node] != kNoRow) {
    entries.emplace_back(conserve_row_[sp_.interval_id(k, l)][node],
                         Rational(-1));
  }
  if (conserve_row_[sp_.interval_id(l + 1, m)][node] != kNoRow) {
    entries.emplace_back(conserve_row_[sp_.interval_id(l + 1, m)][node],
                         Rational(-1));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::string IntervalFlowOracle::send_name(std::size_t interval_id,
                                          EdgeId e) const {
  auto [k, m] = sp_.interval(interval_id);
  return "send_" + edge_tag(instance_.platform, e) + "_v" +
         std::to_string(k) + "_" + std::to_string(m);
}

std::string IntervalFlowOracle::cons_name(NodeId node,
                                          std::size_t task) const {
  if (family_ == Family::kReduce) {
    auto [k, l, m] = sp_.task(task);
    return "cons_" + node_tag(instance_.platform, node) + "_T" +
           std::to_string(k) + "_" + std::to_string(l) + "_" +
           std::to_string(m);
  }
  return "cons_" + node_tag(instance_.platform, node) + "_t" +
         std::to_string(task);
}

lp::GeneratedColumn IntervalFlowOracle::make_send(std::size_t interval_id,
                                                  EdgeId e) const {
  GeneratedColumn gc;
  gc.name = send_name(interval_id, e);
  gc.objective = Rational(0);
  gc.entries = send_entries(interval_id, e);
  gc.tag = make_tag(kSendTag, interval_id, e);
  return gc;
}

lp::GeneratedColumn IntervalFlowOracle::make_cons(NodeId node,
                                                  std::size_t task) const {
  GeneratedColumn gc;
  gc.name = cons_name(node, task);
  gc.objective = Rational(0);
  gc.entries = cons_entries(node, task);
  gc.tag = make_tag(kConsTag, node, task);
  return gc;
}

void IntervalFlowOracle::seed_hints_from_names(
    const std::vector<std::string>& names,
    std::vector<std::pair<std::size_t, EdgeId>>& send_seed,
    std::vector<std::pair<NodeId, std::size_t>>& cons_seed) const {
  if (names.empty()) return;
  // One pass over the implicit column set builds the name index; a basis
  // snapshot has at most m entries, so the map amortizes immediately.
  std::unordered_map<std::string, std::uint64_t> by_name;
  by_name.reserve(total_columns_);
  const auto& graph = instance_.platform.graph();
  for (std::size_t iv = 0; iv < sp_.num_intervals(); ++iv) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (send_var_[iv][e] == kSuppressed) continue;
      by_name.emplace(send_name(iv, e), make_tag(kSendTag, iv, e));
    }
  }
  for (NodeId node : compute_nodes_) {
    for (std::size_t task = 0; task < sp_.num_tasks(); ++task) {
      by_name.emplace(cons_name(node, task), make_tag(kConsTag, node, task));
    }
  }
  for (const std::string& name : names) {
    auto it = by_name.find(name);
    if (it == by_name.end()) continue;
    if (tag_kind(it->second) == kSendTag) {
      send_seed.emplace_back(tag_a(it->second), tag_b(it->second));
    } else {
      cons_seed.emplace_back(tag_a(it->second), tag_b(it->second));
    }
  }
}

void IntervalFlowOracle::register_var(std::uint64_t tag, std::size_t var) {
  if (var != var_tags_.size()) {
    throw std::logic_error("interval colgen: non-sequential column append");
  }
  var_tags_.push_back(tag);
  switch (tag_kind(tag)) {
    case kSendTag:
      send_var_[tag_a(tag)][tag_b(tag)] = var;
      break;
    case kConsTag:
      cons_var_[tag_a(tag)][tag_b(tag)] = var;
      break;
    default:
      break;  // TP
  }
}

void IntervalFlowOracle::added(const lp::GeneratedColumn& column,
                               lp::VarId var) {
  register_var(column.tag, var.index);
}

void IntervalFlowOracle::price(const std::vector<double>& y, double tolerance,
                               std::size_t max_columns,
                               std::vector<lp::GeneratedColumn>& out) {
  const auto& graph = instance_.platform.graph();
  struct Cand {
    double d;
    std::uint64_t tag;
  };
  std::vector<Cand> cands;
  auto dual = [&](std::size_t row) { return row == kNoRow ? 0.0 : y[row]; };

  // Both grids shard over their OUTER dimension (interval rows of the send
  // grid, compute nodes of the cons grid); every candidate's reduced cost
  // is computed independently, and the shard-major merge below reproduces
  // the serial scan order exactly, so the emitted list is bit-identical to
  // a serial sweep at any thread count.
  const std::size_t n_iv = sp_.num_intervals();
  {
    const std::size_t shards = par_.shard_count(n_iv, 8);
    std::vector<lp::ShardLocal<std::vector<Cand>>> parts(shards);
    par_.for_shards(
        n_iv, 8, [&](std::size_t shard, std::size_t begin, std::size_t end) {
          auto& local = parts[shard].value;
          for (std::size_t iv = begin; iv < end; ++iv) {
            const auto& present = send_var_[iv];
            const auto& conserve = conserve_row_[iv];
            for (EdgeId e = 0; e < graph.num_edges(); ++e) {
              if (present[e] != kAbsent) continue;
              const auto& edge = graph.edge(e);
              const double d =
                  edge_unit_d_[e] * (dual(op_out_row_[edge.src]) +
                                     dual(op_in_row_[edge.dst])) +
                  dual(conserve[edge.dst]) - dual(conserve[edge.src]);
              if (d < -tolerance) {
                local.push_back({d, make_tag(kSendTag, iv, e)});
              }
            }
          }
        });
    for (auto& part : parts) {
      cands.insert(cands.end(), part.value.begin(), part.value.end());
    }
  }
  {
    const std::size_t shards = par_.shard_count(compute_nodes_.size(), 1);
    std::vector<lp::ShardLocal<std::vector<Cand>>> parts(shards);
    par_.for_shards(
        compute_nodes_.size(), 1,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          auto& local = parts[shard].value;
          for (std::size_t c = begin; c < end; ++c) {
            const NodeId node = compute_nodes_[c];
            const double yc = dual(compute_row_[node]);
            for (std::size_t iv = 0; iv < n_iv; ++iv) {
              auto [k, m] = sp_.interval(iv);
              for (std::size_t l = k; l < m; ++l) {
                const std::size_t task = sp_.task_id(k, l, m);
                if (cons_var_[node][task] != kAbsent) continue;
                const double d =
                    node_unit_d_[node] * yc + dual(conserve_row_[iv][node]) -
                    dual(conserve_row_[sp_.interval_id(k, l)][node]) -
                    dual(conserve_row_[sp_.interval_id(l + 1, m)][node]);
                if (d < -tolerance) {
                  local.push_back({d, make_tag(kConsTag, node, task)});
                }
              }
            }
          }
        });
    for (auto& part : parts) {
      cands.insert(cands.end(), part.value.begin(), part.value.end());
    }
  }

  auto more_violated = [](const Cand& a, const Cand& b) {
    if (a.d != b.d) return a.d < b.d;
    return a.tag < b.tag;
  };
  if (cands.size() > max_columns) {
    std::nth_element(cands.begin(), cands.begin() + max_columns, cands.end(),
                     more_violated);
    cands.resize(max_columns);
  }
  std::sort(cands.begin(), cands.end(), more_violated);
  out.reserve(out.size() + cands.size());
  for (const Cand& c : cands) {
    if (tag_kind(c.tag) == kSendTag) {
      out.push_back(make_send(tag_a(c.tag), tag_b(c.tag)));
    } else {
      out.push_back(make_cons(tag_a(c.tag), tag_b(c.tag)));
    }
  }
}

void IntervalFlowOracle::price_exact(const std::vector<Rational>& y,
                                     std::size_t max_columns,
                                     std::vector<lp::GeneratedColumn>& out) {
  const auto& graph = instance_.platform.graph();
  // Exact reduced cost straight off the skeleton (generated columns have
  // zero objective, so A'y < 0 is the violation test). The all-zero-dual
  // fast path matters: at an optimum most one-port rows are slack and most
  // conservation potentials sit at zero, so the typical absent column never
  // touches a rational.
  auto is_zero = [&](std::size_t row) {
    return row == kNoRow || y[row].is_zero();
  };
  // How many more columns this call may emit. A serial sweep stops the
  // moment `out` reaches max_columns; the sharded sweep below caps every
  // shard at `needed` and truncates the shard-major merge to `needed`,
  // which provably reproduces the serial prefix: the serial output is the
  // first `needed` violated tags in global scan order, each shard's
  // contribution to that prefix is at most `needed`, and the merge
  // preserves the global order.
  const std::size_t needed =
      max_columns > out.size() ? max_columns - out.size() : 1;

  // Violation test per grid cell, exact.
  auto send_violated = [&](std::size_t iv, EdgeId e) {
    const auto& edge = graph.edge(e);
    const std::size_t r_out = op_out_row_[edge.src];
    const std::size_t r_in = op_in_row_[edge.dst];
    const std::size_t r_dst = conserve_row_[iv][edge.dst];
    const std::size_t r_src = conserve_row_[iv][edge.src];
    if (is_zero(r_out) && is_zero(r_in) && is_zero(r_dst) && is_zero(r_src)) {
      return false;
    }
    Rational rc(0);
    if (!is_zero(r_out)) rc.add_product(edge_unit_[e], y[r_out]);
    if (!is_zero(r_in)) rc.add_product(edge_unit_[e], y[r_in]);
    if (!is_zero(r_dst)) rc += y[r_dst];
    if (!is_zero(r_src)) rc -= y[r_src];
    return rc.signum() < 0;
  };
  auto cons_violated = [&](NodeId node, std::size_t iv, std::size_t l) {
    auto [k, m] = sp_.interval(iv);
    const std::size_t r_comp = compute_row_[node];
    const std::size_t r_prod = conserve_row_[iv][node];
    const std::size_t r_left = conserve_row_[sp_.interval_id(k, l)][node];
    const std::size_t r_right = conserve_row_[sp_.interval_id(l + 1, m)][node];
    if (is_zero(r_comp) && is_zero(r_prod) && is_zero(r_left) &&
        is_zero(r_right)) {
      return false;
    }
    Rational rc(0);
    if (!is_zero(r_comp)) rc.add_product(node_unit_[node], y[r_comp]);
    if (!is_zero(r_prod)) rc += y[r_prod];
    if (!is_zero(r_left)) rc -= y[r_left];
    if (!is_zero(r_right)) rc -= y[r_right];
    return rc.signum() < 0;
  };

  // Sharded sweep collecting violated TAGS (cheap); columns materialize
  // only for the merged, truncated survivors.
  std::vector<std::uint64_t> tags;
  const std::size_t n_iv = sp_.num_intervals();
  {
    const std::size_t shards = par_.shard_count(n_iv, 8);
    std::vector<lp::ShardLocal<std::vector<std::uint64_t>>> parts(shards);
    par_.for_shards(
        n_iv, 8, [&](std::size_t shard, std::size_t begin, std::size_t end) {
          auto& local = parts[shard].value;
          for (std::size_t iv = begin; iv < end && local.size() < needed;
               ++iv) {
            const auto& present = send_var_[iv];
            for (EdgeId e = 0; e < graph.num_edges(); ++e) {
              if (present[e] != kAbsent) continue;
              if (send_violated(iv, e)) {
                local.push_back(make_tag(kSendTag, iv, e));
                if (local.size() >= needed) break;
              }
            }
          }
        });
    for (auto& part : parts) {
      tags.insert(tags.end(), part.value.begin(), part.value.end());
    }
  }
  if (tags.size() < needed) {
    const std::size_t shards = par_.shard_count(compute_nodes_.size(), 1);
    std::vector<lp::ShardLocal<std::vector<std::uint64_t>>> parts(shards);
    par_.for_shards(
        compute_nodes_.size(), 1,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          auto& local = parts[shard].value;
          for (std::size_t c = begin; c < end && local.size() < needed; ++c) {
            const NodeId node = compute_nodes_[c];
            for (std::size_t iv = 0; iv < n_iv && local.size() < needed;
                 ++iv) {
              auto [k, m] = sp_.interval(iv);
              for (std::size_t l = k; l < m; ++l) {
                const std::size_t task = sp_.task_id(k, l, m);
                if (cons_var_[node][task] != kAbsent) continue;
                if (cons_violated(node, iv, l)) {
                  local.push_back(make_tag(kConsTag, node, task));
                  if (local.size() >= needed) break;
                }
              }
            }
          }
        });
    for (auto& part : parts) {
      tags.insert(tags.end(), part.value.begin(), part.value.end());
    }
  }
  if (tags.size() > needed) tags.resize(needed);
  out.reserve(out.size() + tags.size());
  for (std::uint64_t tag : tags) {
    if (tag_kind(tag) == kSendTag) {
      out.push_back(make_send(tag_a(tag), tag_b(tag)));
    } else {
      out.push_back(make_cons(tag_a(tag), tag_b(tag)));
    }
  }
}

void IntervalFlowOracle::materialize_all(
    std::vector<lp::GeneratedColumn>& out) {
  const auto& graph = instance_.platform.graph();
  for (std::size_t iv = 0; iv < sp_.num_intervals(); ++iv) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (send_var_[iv][e] == kAbsent) out.push_back(make_send(iv, e));
    }
  }
  for (NodeId node : compute_nodes_) {
    for (std::size_t task = 0; task < sp_.num_tasks(); ++task) {
      if (cons_var_[node][task] == kAbsent) {
        out.push_back(make_cons(node, task));
      }
    }
  }
}

std::optional<lp::ExactSolution> IntervalFlowOracle::try_solve(
    const platform::ReduceInstance& instance, Family family,
    const std::vector<NodeId>& compute_nodes, ColGenMode mode,
    std::size_t min_columns, const lp::ColGenOptions& colgen_options,
    const lp::ExactSolver& solver, lp::SolveContext& context,
    const std::function<IntervalSeeds()>& heuristic_seeds,
    const ReduceSolution* previous, ReduceSolution& out) {
  const bool use_colgen =
      mode == ColGenMode::kAlways ||
      (mode == ColGenMode::kAuto &&
       full_model_columns(instance, family, compute_nodes.size()) >=
           min_columns);
  if (!use_colgen) return std::nullopt;

  IntervalSeeds seeds = heuristic_seeds();
  IntervalFlowOracle oracle(instance, family, compute_nodes);
  if (previous &&
      previous->num_participants == instance.participants.size()) {
    // The previous tables are sized (and id-keyed) by the OLD platform; on
    // a mutated one, ids past the current ranges are dropped and surviving
    // ids may denote remapped entities — both only degrade the seed, never
    // correctness (the basis-name seeding below is the id-stable part, and
    // every solution is certified regardless).
    const std::size_t max_iv =
        std::min(previous->send.size(), oracle.sp_.num_intervals());
    for (std::size_t iv = 0; iv < max_iv; ++iv) {
      const std::size_t max_e = std::min<std::size_t>(
          previous->send[iv].size(), instance.platform.num_edges());
      for (EdgeId e = 0; e < max_e; ++e) {
        if (!previous->send[iv][e].is_zero()) seeds.send.emplace_back(iv, e);
      }
    }
    const std::size_t max_n = std::min<std::size_t>(
        previous->cons.size(), instance.platform.num_nodes());
    for (NodeId n = 0; n < max_n; ++n) {
      const std::size_t max_t =
          std::min(previous->cons[n].size(), oracle.sp_.num_tasks());
      for (std::size_t t = 0; t < max_t; ++t) {
        if (!previous->cons[n][t].is_zero()) seeds.cons.emplace_back(n, t);
      }
    }
    // The basis snapshot names columns the solution tables cannot reveal
    // (degenerate basics at zero); the master must contain them or the
    // warm basis maps onto a singular selection.
    std::vector<std::string> basis_names;
    for (const auto& entry : previous->lp_basis.entries) {
      if (entry.kind == lp::BasisColumn::Kind::kStructural &&
          !entry.bound_row) {
        basis_names.push_back(entry.name);
      }
    }
    oracle.seed_hints_from_names(basis_names, seeds.send, seeds.cons);
  }
  lp::Model master = oracle.build_master(std::move(seeds));
  lp::ExactSolution sol =
      solver.solve_colgen(master, oracle, colgen_options, &context);
  if (sol.status == lp::SolveStatus::kOptimal) {
    oracle.extract(sol.primal, out);
  }
  return sol;
}

void IntervalFlowOracle::extract(const std::vector<Rational>& primal,
                                 ReduceSolution& out) const {
  const auto& graph = instance_.platform.graph();
  out.num_participants = instance_.participants.size();
  out.send.assign(sp_.num_intervals(),
                  std::vector<Rational>(graph.num_edges(), Rational(0)));
  out.cons.assign(graph.num_nodes(),
                  std::vector<Rational>(sp_.num_tasks(), Rational(0)));
  for (std::size_t var = 0; var < var_tags_.size(); ++var) {
    const std::uint64_t tag = var_tags_[var];
    switch (tag_kind(tag)) {
      case kSendTag:
        out.send[tag_a(tag)][tag_b(tag)] = primal[var];
        break;
      case kConsTag:
        out.cons[tag_a(tag)][tag_b(tag)] = primal[var];
        break;
      default:
        out.throughput = primal[var];
        break;
    }
  }
}

}  // namespace ssco::core
