#pragma once
// Fixed-period approximation — paper Sec. 4.6, Proposition 4.
//
// The exact period T (LCM of denominators) can be astronomically large; for
// deployment one picks a practical period T_fixed and rounds each tree's
// per-period operation count down: r(T) = floor(w(T)/T * T_fixed). One-port
// feasibility is preserved (rounding only removes traffic), and the
// throughput loss is bounded by card(Trees) / T_fixed — it vanishes as
// T_fixed grows.

#include "core/tree_extract.h"
#include "num/bigint.h"

namespace ssco::core {

struct PeriodApproximation {
  /// The chosen practical period.
  Rational fixed_period;
  /// Integer operations per period for each tree (same order as the input
  /// decomposition).
  std::vector<num::BigInt> operations;
  /// Achieved throughput: sum(operations) / fixed_period.
  Rational achieved_throughput;
  /// The paper's guarantee: optimal TP - achieved <= card(Trees)/T_fixed.
  Rational loss_bound;
};

/// Rounds `decomposition` to the period `t_fixed` (> 0).
[[nodiscard]] PeriodApproximation approximate_period(
    const TreeDecomposition& decomposition, const Rational& t_fixed);

}  // namespace ssco::core
