#include "core/prefix_lp.h"

#include <stdexcept>
#include <unordered_set>

#include "core/lp_names.h"
#include "graph/paths.h"

namespace ssco::core {

namespace {

using lp::LinearExpr;
using lp::Model;
using lp::Sense;
using lp::VarId;
using platform::ReduceInstance;

constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);

void check_instance(const ReduceInstance& instance) {
  const auto& graph = instance.platform.graph();
  if (instance.participants.size() < 2) {
    throw std::invalid_argument("prefix: need at least two participants");
  }
  if (instance.message_size.signum() <= 0 ||
      instance.task_work.signum() <= 0) {
    throw std::invalid_argument("prefix: sizes must be positive");
  }
  std::unordered_set<NodeId> seen;
  for (NodeId p : instance.participants) {
    if (p >= graph.num_nodes()) {
      throw std::invalid_argument("prefix: bad participant node");
    }
    if (!seen.insert(p).second) {
      throw std::invalid_argument("prefix: duplicate participant");
    }
  }
  // v[0,i] needs contributions from every j <= i: demand pairwise forward
  // reachability.
  for (std::size_t j = 0; j < instance.participants.size(); ++j) {
    auto reach = graph::reachable_from(graph, instance.participants[j]);
    for (std::size_t i = j + 1; i < instance.participants.size(); ++i) {
      if (!reach[instance.participants[i]]) {
        throw std::invalid_argument(
            "prefix: participant " + std::to_string(i) +
            " unreachable from participant " + std::to_string(j));
      }
    }
  }
}

std::vector<NodeId> resolve_compute_nodes(const ReduceInstance& instance,
                                          const PrefixLpOptions& options) {
  std::vector<NodeId> nodes =
      options.compute_nodes.empty() ? instance.participants
                                    : options.compute_nodes;
  for (NodeId n : nodes) {
    if (n >= instance.platform.num_nodes()) {
      throw std::invalid_argument("prefix: bad compute node");
    }
  }
  return nodes;
}

bool suppressed_send(const ReduceInstance& instance, const IntervalSpace& sp,
                     std::size_t interval_id, const graph::Edge& edge) {
  auto [k, m] = sp.interval(interval_id);
  // Singleton flowing into its owner duplicates the local supply.
  if (k == m && edge.dst == instance.participants[k]) return true;
  // The last prefix v[0,N-1] has a unique consumer; it never usefully
  // leaves that node.
  if (interval_id == sp.full_interval_id() &&
      edge.src == instance.participants.back()) {
    return true;
  }
  return false;
}

}  // namespace

lp::Model build_prefix_lp(const ReduceInstance& instance,
                          const PrefixLpOptions& options) {
  check_instance(instance);
  const auto compute_nodes = resolve_compute_nodes(instance, options);
  const auto& graph = instance.platform.graph();
  const IntervalSpace sp(instance.participants.size());

  Model model;
  std::vector<std::vector<std::size_t>> send_var(
      sp.num_intervals(), std::vector<std::size_t>(graph.num_edges(), kNoVar));
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    auto [k, m] = sp.interval(iv);
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (suppressed_send(instance, sp, iv, graph.edge(e))) continue;
      send_var[iv][e] = model
                            .add_variable("send_" + edge_tag(instance.platform, e) + "_v" +
                                          std::to_string(k) + "_" +
                                          std::to_string(m))
                            .index;
    }
  }
  std::vector<std::vector<std::size_t>> cons_var(
      graph.num_nodes(), std::vector<std::size_t>(sp.num_tasks(), kNoVar));
  for (NodeId n : compute_nodes) {
    for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
      cons_var[n][t] =
          model.add_variable("cons_" + node_tag(instance.platform, n) + "_t" +
                             std::to_string(t))
              .index;
    }
  }
  VarId tp = model.add_variable("TP");
  model.set_objective(tp, Rational(1));

  // One-port rows.
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    LinearExpr out_busy, in_busy;
    for (EdgeId e : graph.out_edges(n)) {
      Rational unit = instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
        if (send_var[iv][e] != kNoVar) out_busy.add(VarId{send_var[iv][e]}, unit);
      }
    }
    for (EdgeId e : graph.in_edges(n)) {
      Rational unit = instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
        if (send_var[iv][e] != kNoVar) in_busy.add(VarId{send_var[iv][e]}, unit);
      }
    }
    if (!out_busy.empty()) {
      model.add_constraint(out_busy, Sense::kLessEqual, Rational(1),
                           "oneport_out_" + node_tag(instance.platform, n));
    }
    if (!in_busy.empty()) {
      model.add_constraint(in_busy, Sense::kLessEqual, Rational(1),
                           "oneport_in_" + node_tag(instance.platform, n));
    }
  }
  // Compute rows.
  for (NodeId n : compute_nodes) {
    Rational unit = instance.task_work / instance.platform.node_speed(n);
    LinearExpr busy;
    for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
      busy.add(VarId{cons_var[n][t]}, unit);
    }
    model.add_constraint(busy, Sense::kLessEqual, Rational(1),
                         "compute_" + node_tag(instance.platform, n));
  }

  // Conservation with per-prefix demands: at (v[0,i], participants[i]) the
  // net balance equals TP (absorption); elsewhere zero; own singletons free.
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    auto [k, m] = sp.interval(iv);
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      const bool own_singleton = k == m && instance.participants[k] == node;
      if (own_singleton) continue;
      const bool prefix_sink =
          k == 0 && instance.participants[m] == node;

      LinearExpr net;
      bool any = false;
      for (EdgeId e : graph.in_edges(node)) {
        if (send_var[iv][e] != kNoVar) {
          net.add(VarId{send_var[iv][e]}, Rational(1));
          any = true;
        }
      }
      for (EdgeId e : graph.out_edges(node)) {
        if (send_var[iv][e] != kNoVar) {
          net.add(VarId{send_var[iv][e]}, Rational(-1));
          any = true;
        }
      }
      if (!cons_var[node].empty() && cons_var[node][0] != kNoVar) {
        for (std::size_t l = k; l < m; ++l) {
          net.add(VarId{cons_var[node][sp.task_id(k, l, m)]}, Rational(1));
          any = true;
        }
        for (std::size_t x = m + 1; x < sp.n(); ++x) {
          net.add(VarId{cons_var[node][sp.task_id(k, m, x)]}, Rational(-1));
          any = true;
        }
        for (std::size_t x = 0; x < k; ++x) {
          net.add(VarId{cons_var[node][sp.task_id(x, k - 1, m)]},
                  Rational(-1));
          any = true;
        }
      }
      if (prefix_sink) {
        net.add(tp, Rational(-1));
        model.add_constraint(net, Sense::kEqual, Rational(0),
                             "prefix_demand_" + std::to_string(m));
      } else if (any) {
        model.add_constraint(net, Sense::kEqual, Rational(0),
                             "conserve_v" + std::to_string(k) + "_" +
                                 std::to_string(m) + "_n" +
                                 node_tag(instance.platform, node));
      }
    }
  }
  return model;
}

namespace {

/// Chain-of-prefixes seed: v[0,i-1] forwarded from participant i-1 to
/// participant i along shortest paths and merged with v[i,i] on arrival —
/// one complete feasible prefix plan, the analogue of the reduce solver's
/// reduction-tree seeds.
IntervalSeeds chain_seeds(const ReduceInstance& instance) {
  const IntervalSpace sp(instance.participants.size());
  IntervalSeeds seeds;
  for (std::size_t i = 1; i < instance.participants.size(); ++i) {
    const NodeId from = instance.participants[i - 1];
    const NodeId to = instance.participants[i];
    if (from != to) {
      auto tree = graph::dijkstra(instance.platform.graph(),
                                  instance.platform.edge_costs(), from);
      for (EdgeId e : tree.path_to(to, instance.platform.graph())) {
        seeds.send.emplace_back(sp.interval_id(0, i - 1), e);
      }
    }
    seeds.cons.emplace_back(to, sp.task_id(0, i - 1, i));
  }
  return seeds;
}

}  // namespace

ReduceSolution solve_prefix(const ReduceInstance& instance,
                            const PrefixLpOptions& options,
                            const ReduceSolution* previous) {
  check_instance(instance);
  const auto compute_nodes = resolve_compute_nodes(instance, options);
  const auto& graph = instance.platform.graph();
  const IntervalSpace sp(instance.participants.size());

  lp::ExactSolver solver(options.solver);
  lp::SolveContext context;
  if (previous) context.warm = previous->lp_basis;

  lp::ExactSolution sol;
  ReduceSolution out;
  auto colgen = IntervalFlowOracle::try_solve(
      instance, IntervalFlowOracle::Family::kPrefix, compute_nodes,
      options.colgen, options.colgen_min_columns, options.colgen_options,
      solver, context, [&] { return chain_seeds(instance); }, previous, out);
  if (colgen) {
    sol = std::move(*colgen);
  } else {
    Model model = build_prefix_lp(instance, options);
    sol = solver.solve(model, &context);
  }
  if (sol.status != lp::SolveStatus::kOptimal) {
    throw std::runtime_error("prefix LP did not reach optimality: " +
                             lp::to_string(sol.status));
  }
  if (!colgen) {
    out.num_participants = instance.participants.size();
    out.send.assign(sp.num_intervals(),
                    std::vector<Rational>(graph.num_edges(), Rational(0)));
    out.cons.assign(graph.num_nodes(),
                    std::vector<Rational>(sp.num_tasks(), Rational(0)));
    std::size_t next = 0;
    for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        if (suppressed_send(instance, sp, iv, graph.edge(e))) continue;
        out.send[iv][e] = sol.primal[next++];
      }
    }
    for (NodeId n : compute_nodes) {
      for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
        out.cons[n][t] = sol.primal[next++];
      }
    }
    out.throughput = sol.primal[next];
  }

  out.certified = sol.certified;
  out.lp_method = sol.method;
  out.lp_pivots = sol.float_iterations + sol.exact_iterations;
  out.lp_basis = std::move(context.warm);
  out.warm_started = sol.warm_started;
  out.lp_colgen_rounds = sol.colgen_rounds;
  out.lp_columns_generated = sol.colgen_columns_generated;
  out.lp_columns_total = sol.colgen_columns_total;
  out.lp_rows_active = sol.colgen_rows_active;
  out.lp_rows_total = sol.colgen_rows_total;
  out.lp_stab_rounds = sol.colgen_stab_rounds;

  if (options.prune_cycles) out.prune_cycles(instance);
  return out;
}

std::string validate_prefix(const platform::ReduceInstance& instance,
                            const ReduceSolution& solution) {
  const IntervalSpace sp(instance.participants.size());
  const auto& graph = instance.platform.graph();

  std::vector<Rational> occ = solution.edge_occupation(instance);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    Rational out_busy(0), in_busy(0);
    for (EdgeId e : graph.out_edges(n)) out_busy += occ[e];
    for (EdgeId e : graph.in_edges(n)) in_busy += occ[e];
    if (out_busy > Rational(1)) return "one-port (send) violated";
    if (in_busy > Rational(1)) return "one-port (recv) violated";
  }
  for (const Rational& load : solution.compute_load(instance)) {
    if (load > Rational(1)) return "compute load exceeds 1";
  }
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    auto [k, m] = sp.interval(iv);
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      const bool own_singleton = k == m && instance.participants[k] == node;
      if (own_singleton) continue;
      Rational net = solution.net_balance(instance, iv, node);
      const bool prefix_sink = k == 0 && instance.participants[m] == node;
      if (prefix_sink) {
        if (net != solution.throughput) {
          return "prefix v[0," + std::to_string(m) + "] absorbed at rate " +
                 net.to_string() + " != TP";
        }
      } else if (!net.is_zero()) {
        return "conservation violated for v[" + std::to_string(k) + "," +
               std::to_string(m) + "] at node " + std::to_string(node);
      }
    }
  }
  return {};
}

}  // namespace ssco::core
