#pragma once
// Reduction trees (paper Sec. 4.1/4.3, Definition 1).
//
// A reduction tree is a list of tasks — transfers of partial values v[k,m]
// along edges and merges T(k,l,m) on nodes — such that every task input is
// either another task's result or an original value v[i,i] on its owner, and
// the overall result is v[0,N-1] on the target. A weighted family of such
// trees is the polynomial-size description of a steady-state reduce schedule
// (Lemma 2): tree weights are per-time-unit throughputs.

#include <string>
#include <vector>

#include "core/intervals.h"
#include "graph/digraph.h"
#include "num/rational.h"
#include "platform/paper_instances.h"

namespace ssco::core {

using num::Rational;

struct TreeTask {
  enum class Kind { kTransfer, kCompute };
  Kind kind = Kind::kTransfer;
  /// kTransfer: platform edge carrying `interval`.
  graph::EdgeId edge = graph::kInvalidId;
  std::size_t interval = 0;  // IntervalSpace interval id
  /// kCompute: node executing `task`.
  graph::NodeId node = graph::kInvalidId;
  std::size_t task = 0;  // IntervalSpace task id

  [[nodiscard]] static TreeTask transfer(graph::EdgeId edge,
                                         std::size_t interval) {
    TreeTask t;
    t.kind = Kind::kTransfer;
    t.edge = edge;
    t.interval = interval;
    return t;
  }
  [[nodiscard]] static TreeTask compute(graph::NodeId node, std::size_t task) {
    TreeTask t;
    t.kind = Kind::kCompute;
    t.node = node;
    t.task = task;
    return t;
  }

  friend bool operator==(const TreeTask&, const TreeTask&) = default;
};

struct ReductionTree {
  std::vector<TreeTask> tasks;
  /// Reduce operations per time-unit carried by this tree.
  Rational weight;

  /// Checks Definition 1 exactly: every demanded (value, location) is
  /// produced exactly once (leaves drawing from v[i,i] supplies), the root
  /// v[0,N-1] lands on the target, and per-interval transfer chains are
  /// acyclic. Returns the first violation, or empty when valid.
  [[nodiscard]] std::string validate(
      const platform::ReduceInstance& instance) const;

  /// Resource busy time per executed operation: max over every out-port,
  /// in-port and CPU touched by this tree. The reciprocal is the best
  /// throughput the tree can sustain alone — used to score baseline trees.
  [[nodiscard]] Rational bottleneck_time(
      const platform::ReduceInstance& instance) const;

  /// Fig. 11/12-style listing ("transfer [k,m] i -> j", "cons[k,l,m] in n").
  [[nodiscard]] std::string to_string(
      const platform::ReduceInstance& instance) const;
};

}  // namespace ssco::core
