#pragma once
// Concrete periodic schedule for a weighted reduction-tree family
// (paper Sec. 4.3).
//
// Pipeline: integralize the tree weights (period T = LCM of weight
// denominators, so each tree runs an integer number of operations per
// period), build the bipartite port graph from every tree's transfer tasks,
// decompose it with the weighted edge coloring, and lay the slices
// back-to-back. Compute tasks are packed sequentially per node (computation
// fully overlaps communication in the model; ordering within the period is
// irrelevant in steady state because inputs come from earlier periods'
// buffered results — the paper's initialization-phase argument).

#include "core/schedule.h"
#include "core/tree_extract.h"

namespace ssco::core {

struct ReduceScheduleOptions {
  bool allow_split_messages = true;
};

[[nodiscard]] PeriodicSchedule build_reduce_schedule(
    const platform::ReduceInstance& instance,
    const TreeDecomposition& decomposition,
    const ReduceScheduleOptions& options = {});

}  // namespace ssco::core
