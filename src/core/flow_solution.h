#pragma once
// Multi-commodity flow solutions for scatter / gossip steady states.
//
// The scatter LP (SSSP, Sec. 3.1) and the gossip LP (SSPA2A, Sec. 3.5) both
// produce, per message type, a fractional flow over the platform edges. This
// module holds that result, verifies the paper's constraints exactly
// (conservation, one-port, per-target throughput), and post-processes it:
// LP vertices can contain useless flow cycles on degenerate instances, and
// cycle-free flows are what the schedule builders and the tree extractor
// assume, so `prune_cycles` cancels them (it never changes the throughput
// and never increases any port occupation).

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "lp/warm_start.h"
#include "num/rational.h"
#include "platform/platform.h"

namespace ssco::core {

using graph::EdgeId;
using graph::NodeId;
using num::BigInt;
using num::Rational;

/// One message type: `rate` messages per time-unit travel from origin to
/// destination along the fractional `edge_flow`.
struct CommodityFlow {
  NodeId origin = graph::kInvalidId;
  NodeId destination = graph::kInvalidId;
  /// Messages of this type per time-unit crossing each edge (by EdgeId).
  std::vector<Rational> edge_flow;
  /// Delivered messages per time-unit (equals the common throughput TP).
  Rational rate;
};

/// Solution of a scatter or gossip steady-state LP.
struct MultiFlow {
  /// Optimal common throughput TP (operations per time-unit).
  Rational throughput;
  std::vector<CommodityFlow> commodities;
  /// Uniform message size used when the flow was computed.
  Rational message_size{1};
  bool certified = false;
  std::string lp_method;
  /// Simplex pivots spent solving the LP (float + exact passes combined).
  std::size_t lp_pivots = 0;
  /// Optimal-basis snapshot; pass this solution as `previous` to the next
  /// solve on a mutated platform to re-solve incrementally.
  lp::WarmStart lp_basis;
  /// True when this solution came from a warm-started re-solve.
  bool warm_started = false;

  /// Busy time per time-unit on each edge: sum_k flow_k(e) * size * c(e).
  [[nodiscard]] std::vector<Rational> edge_occupation(
      const platform::Platform& platform) const;

  /// Exact check of the paper's constraints: per-commodity conservation at
  /// every intermediate node, delivery rate at the destination, emission rate
  /// at the origin, and the one-port inequalities. Returns a description of
  /// the first violation, or an empty string when valid.
  [[nodiscard]] std::string validate(const platform::Platform& platform) const;

  /// Cancels flow cycles commodity by commodity (see file comment).
  void prune_cycles(const platform::Platform& platform);
};

/// Cancels cycles in a single conservative flow; exposed for tests.
/// `flow` is per-EdgeId and is modified in place.
void cancel_flow_cycles(const graph::Digraph& graph,
                        std::vector<Rational>& flow);

}  // namespace ssco::core
