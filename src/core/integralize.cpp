#include "core/integralize.h"

namespace ssco::core {

using num::BigInt;

BigInt integral_period(const MultiFlow& flow) {
  BigInt period{1};
  period = BigInt::lcm(period, flow.throughput.den());
  for (const CommodityFlow& c : flow.commodities) {
    for (const Rational& v : c.edge_flow) {
      if (!v.is_zero()) period = BigInt::lcm(period, v.den());
    }
  }
  return period;
}

BigInt integral_period(const ReduceSolution& solution) {
  BigInt period{1};
  period = BigInt::lcm(period, solution.throughput.den());
  for (const auto& per_edge : solution.send) {
    for (const Rational& v : per_edge) {
      if (!v.is_zero()) period = BigInt::lcm(period, v.den());
    }
  }
  for (const auto& per_task : solution.cons) {
    for (const Rational& v : per_task) {
      if (!v.is_zero()) period = BigInt::lcm(period, v.den());
    }
  }
  return period;
}

BigInt integral_period(const std::vector<Rational>& weights) {
  BigInt period{1};
  for (const Rational& w : weights) {
    if (!w.is_zero()) period = BigInt::lcm(period, w.den());
  }
  return period;
}

}  // namespace ssco::core
