#pragma once
// Concrete periodic schedule for scatter/gossip flows (paper Sec. 3.3).
//
// Pipeline: integralize the flow (period T = LCM of denominators), build the
// bipartite port graph (one sender and one receiver port per node, one
// weighted edge per (platform edge, message type) with positive traffic),
// decompose it with the weighted edge coloring, and lay the color classes
// out back-to-back inside the period. Every port then serves at most one
// transfer at any instant — the one-port model holds by construction.
//
// Two modes, matching Fig. 4:
//  * split allowed (default): activities may carry fractional message counts
//    (a message finishes in a later slice); the period stays T.
//  * no-split: the schedule is rescaled by the LCM of the per-activity
//    message denominators, so every activity carries whole messages
//    (Fig. 4(b): period 12 -> 48).

#include "core/flow_solution.h"
#include "core/schedule.h"
#include "platform/paper_instances.h"

namespace ssco::core {

struct ScatterScheduleOptions {
  bool allow_split_messages = true;
};

/// Builds the periodic schedule realizing `flow` on the platform. Works for
/// any MultiFlow (scatter or gossip); activity `type` is the commodity index.
[[nodiscard]] PeriodicSchedule build_flow_schedule(
    const platform::Platform& platform, const MultiFlow& flow,
    const ScatterScheduleOptions& options = {});

}  // namespace ssco::core
