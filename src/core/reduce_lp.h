#pragma once
// Series-of-Reduces steady-state LP — SSR(G), paper Sec. 4.2.
//
// Participants P_{r_0}..P_{r_{N-1}} hold values v_0..v_{N-1}; the platform
// pipelines reductions v[0,N-1] = v_0 ⊕ ... ⊕ v_{N-1} (⊕ associative, NOT
// commutative — only adjacent intervals merge) toward a target node. The LP
// routes partial values v[k,m] and places merge tasks T(k,l,m) to maximize
// the completed-reduction rate TP, under one-port communication and
// fully-overlapped single-CPU computation.
//
// Builder conventions (mechanical, optimum-preserving):
//  * s(Pi->Pj) and alpha(Pi) are substituted by their defining equalities
//    (paper eq. 8/9), giving one-port and compute rows directly over
//    send/cons variables;
//  * cons variables exist only on `compute_nodes` (default: the
//    participants) — routers forward but do not compute;
//  * send variables for the full result leaving the target are suppressed.

#include "core/interval_colgen.h"
#include "core/reduce_solution.h"
#include "lp/colgen.h"
#include "lp/exact_solver.h"

namespace ssco::core {

struct ReduceLpOptions {
  lp::ExactSolverOptions solver;
  bool prune_cycles = true;
  /// Nodes allowed to execute merge tasks; empty = instance participants.
  std::vector<NodeId> compute_nodes;
  /// Delayed column generation over the quadratic send/cons space
  /// (core/interval_colgen.h): the restricted master is seeded from the
  /// flat/chain/binomial reduction-tree plans (baselines/reduce_trees.h)
  /// plus the support of `previous` on a warm re-solve, and grows by
  /// pricing until one exact sweep certifies the COMPLETE paper LP. kAuto
  /// switches it on once the full model exceeds `colgen_min_columns`
  /// columns; the certified objective is bit-identical either way.
  ColGenMode colgen = ColGenMode::kAuto;
  std::size_t colgen_min_columns = 8192;
  lp::ColGenOptions colgen_options;
};

[[nodiscard]] lp::Model build_reduce_lp(
    const platform::ReduceInstance& instance,
    const ReduceLpOptions& options = {});

/// `previous` (optional) warm-starts the solve from that solution's optimal
/// basis — see solve_scatter.
[[nodiscard]] ReduceSolution solve_reduce(
    const platform::ReduceInstance& instance,
    const ReduceLpOptions& options = {},
    const ReduceSolution* previous = nullptr);

}  // namespace ssco::core
