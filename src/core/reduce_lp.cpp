#include "core/reduce_lp.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "baselines/reduce_trees.h"
#include "core/lp_names.h"
#include "core/reduction_tree.h"
#include "graph/paths.h"

namespace ssco::core {

namespace {

using lp::LinearExpr;
using lp::Model;
using lp::Sense;
using lp::VarId;
using platform::ReduceInstance;

constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);

struct ReduceVars {
  /// send_var[interval_id][edge_id]; kNoVar where suppressed.
  std::vector<std::vector<std::size_t>> send_var;
  /// cons_var[node_id][task_id]; kNoVar on non-compute nodes.
  std::vector<std::vector<std::size_t>> cons_var;
  VarId throughput;
};

void check_instance(const ReduceInstance& instance) {
  const auto& graph = instance.platform.graph();
  if (instance.participants.empty()) {
    throw std::invalid_argument("reduce: no participants");
  }
  if (instance.target >= graph.num_nodes()) {
    throw std::invalid_argument("reduce: bad target node");
  }
  if (instance.message_size.signum() <= 0 ||
      instance.task_work.signum() <= 0) {
    throw std::invalid_argument("reduce: sizes must be positive");
  }
  std::unordered_set<NodeId> seen;
  for (NodeId p : instance.participants) {
    if (p >= graph.num_nodes()) {
      throw std::invalid_argument("reduce: bad participant node");
    }
    if (!seen.insert(p).second) {
      throw std::invalid_argument("reduce: duplicate participant");
    }
    auto reachable = graph::reachable_from(graph, p);
    if (!reachable[instance.target]) {
      throw std::invalid_argument("reduce: target unreachable from participant");
    }
  }
}

std::vector<NodeId> resolve_compute_nodes(const ReduceInstance& instance,
                                          const ReduceLpOptions& options) {
  std::vector<NodeId> nodes =
      options.compute_nodes.empty() ? instance.participants
                                    : options.compute_nodes;
  for (NodeId n : nodes) {
    if (n >= instance.platform.num_nodes()) {
      throw std::invalid_argument("reduce: bad compute node");
    }
  }
  return nodes;
}

/// True when the send variable (interval, edge) is provably useless.
bool suppressed_send(const ReduceInstance& instance, const IntervalSpace& sp,
                     std::size_t interval_id, const graph::Edge& edge) {
  auto [k, m] = sp.interval(interval_id);
  // The complete result never usefully leaves the target.
  if (interval_id == sp.full_interval_id() && edge.src == instance.target) {
    return true;
  }
  // A singleton flowing into its own owner duplicates the local supply.
  if (k == m && edge.dst == instance.participants[k]) return true;
  return false;
}

ReduceVars declare_variables(const ReduceInstance& instance,
                             const std::vector<NodeId>& compute_nodes,
                             Model& model) {
  const auto& graph = instance.platform.graph();
  const IntervalSpace sp(instance.participants.size());

  ReduceVars vars;
  vars.send_var.assign(sp.num_intervals(),
                       std::vector<std::size_t>(graph.num_edges(), kNoVar));
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    auto [k, m] = sp.interval(iv);
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (suppressed_send(instance, sp, iv, graph.edge(e))) continue;
      VarId v = model.add_variable("send_" + edge_tag(instance.platform, e) + "_v" +
                                   std::to_string(k) + "_" +
                                   std::to_string(m));
      vars.send_var[iv][e] = v.index;
    }
  }
  vars.cons_var.assign(graph.num_nodes(),
                       std::vector<std::size_t>(sp.num_tasks(), kNoVar));
  for (NodeId n : compute_nodes) {
    for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
      auto [k, l, m] = sp.task(t);
      VarId v = model.add_variable(
          "cons_" + node_tag(instance.platform, n) + "_T" + std::to_string(k) + "_" +
          std::to_string(l) + "_" + std::to_string(m));
      vars.cons_var[n][t] = v.index;
    }
  }
  vars.throughput = model.add_variable("TP");
  model.set_objective(vars.throughput, Rational(1));
  return vars;
}

}  // namespace

lp::Model build_reduce_lp(const ReduceInstance& instance,
                          const ReduceLpOptions& options) {
  check_instance(instance);
  const auto compute_nodes = resolve_compute_nodes(instance, options);
  const auto& graph = instance.platform.graph();
  const IntervalSpace sp(instance.participants.size());

  Model model;
  ReduceVars vars = declare_variables(instance, compute_nodes, model);

  // One-port rows (eq. 2-3 via eq. 8).
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    LinearExpr out_busy, in_busy;
    for (EdgeId e : graph.out_edges(n)) {
      Rational unit = instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
        if (vars.send_var[iv][e] != kNoVar) {
          out_busy.add(VarId{vars.send_var[iv][e]}, unit);
        }
      }
    }
    for (EdgeId e : graph.in_edges(n)) {
      Rational unit = instance.message_size * instance.platform.edge_cost(e);
      for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
        if (vars.send_var[iv][e] != kNoVar) {
          in_busy.add(VarId{vars.send_var[iv][e]}, unit);
        }
      }
    }
    if (!out_busy.empty()) {
      model.add_constraint(out_busy, Sense::kLessEqual, Rational(1),
                           "oneport_out_" + node_tag(instance.platform, n));
    }
    if (!in_busy.empty()) {
      model.add_constraint(in_busy, Sense::kLessEqual, Rational(1),
                           "oneport_in_" + node_tag(instance.platform, n));
    }
  }

  // Compute rows (eq. 7 via eq. 9): alpha(P_i) <= 1.
  for (NodeId n : compute_nodes) {
    Rational unit = instance.task_work / instance.platform.node_speed(n);
    LinearExpr busy;
    for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
      busy.add(VarId{vars.cons_var[n][t]}, unit);
    }
    model.add_constraint(busy, Sense::kLessEqual, Rational(1),
                         "compute_" + node_tag(instance.platform, n));
  }

  // Conservation law (eq. 10) + throughput row (eq. 11).
  const std::size_t full = sp.full_interval_id();
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    auto [k, m] = sp.interval(iv);
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      const bool own_singleton = k == m && instance.participants[k] == node;
      if (own_singleton) continue;  // unlimited local supply
      const bool final_at_target = iv == full && node == instance.target;

      LinearExpr net;
      bool any = false;
      for (EdgeId e : graph.in_edges(node)) {
        if (vars.send_var[iv][e] != kNoVar) {
          net.add(VarId{vars.send_var[iv][e]}, Rational(1));
          any = true;
        }
      }
      for (EdgeId e : graph.out_edges(node)) {
        if (vars.send_var[iv][e] != kNoVar) {
          net.add(VarId{vars.send_var[iv][e]}, Rational(-1));
          any = true;
        }
      }
      if (!vars.cons_var[node].empty() &&
          vars.cons_var[node][0] != kNoVar) {
        // Produced locally by T(k,l,m) for k <= l < m.
        for (std::size_t l = k; l < m; ++l) {
          net.add(VarId{vars.cons_var[node][sp.task_id(k, l, m)]},
                  Rational(1));
          any = true;
        }
        // Consumed locally as the left input of T(k,m,x), x > m, or the
        // right input of T(x,k-1,m), x < k.
        for (std::size_t x = m + 1; x < sp.n(); ++x) {
          net.add(VarId{vars.cons_var[node][sp.task_id(k, m, x)]},
                  Rational(-1));
          any = true;
        }
        for (std::size_t x = 0; x < k; ++x) {
          net.add(VarId{vars.cons_var[node][sp.task_id(x, k - 1, m)]},
                  Rational(-1));
          any = true;
        }
      }
      if (final_at_target) {
        net.add(vars.throughput, Rational(-1));
        model.add_constraint(net, Sense::kEqual, Rational(0), "throughput");
      } else if (any) {
        model.add_constraint(net, Sense::kEqual, Rational(0),
                             "conserve_v" + std::to_string(k) + "_" +
                                 std::to_string(m) + "_n" +
                                 node_tag(instance.platform, node));
      }
    }
  }
  return model;
}

namespace {

/// Heuristic master seeds: every transfer and merge of the three classic
/// reduction trees (paper Sec. 5's conventional schemes) — a complete
/// feasible plan each, so the first restricted master already sustains a
/// positive throughput.
IntervalSeeds tree_seeds(const ReduceInstance& instance) {
  IntervalSeeds seeds;
  for (const ReductionTree& tree :
       {baselines::flat_reduce_tree(instance),
        baselines::chain_reduce_tree(instance),
        baselines::binomial_reduce_tree(instance)}) {
    for (const TreeTask& task : tree.tasks) {
      if (task.kind == TreeTask::Kind::kTransfer) {
        seeds.send.emplace_back(task.interval, task.edge);
      } else {
        seeds.cons.emplace_back(task.node, task.task);
      }
    }
  }
  return seeds;
}

}  // namespace

ReduceSolution solve_reduce(const ReduceInstance& instance,
                            const ReduceLpOptions& options,
                            const ReduceSolution* previous) {
  check_instance(instance);
  const auto compute_nodes = resolve_compute_nodes(instance, options);
  const auto& graph = instance.platform.graph();
  const IntervalSpace sp(instance.participants.size());

  lp::ExactSolver solver(options.solver);
  lp::SolveContext context;
  if (previous) context.warm = previous->lp_basis;

  lp::ExactSolution sol;
  ReduceSolution out;
  auto colgen = IntervalFlowOracle::try_solve(
      instance, IntervalFlowOracle::Family::kReduce, compute_nodes,
      options.colgen, options.colgen_min_columns, options.colgen_options,
      solver, context, [&] { return tree_seeds(instance); }, previous, out);
  if (colgen) {
    sol = std::move(*colgen);
  } else {
    Model model = build_reduce_lp(instance, options);
    sol = solver.solve(model, &context);
  }
  if (sol.status != lp::SolveStatus::kOptimal) {
    throw std::runtime_error("reduce LP did not reach optimality: " +
                             lp::to_string(sol.status));
  }
  if (!colgen) {
    out.num_participants = instance.participants.size();
    out.send.assign(sp.num_intervals(),
                    std::vector<Rational>(graph.num_edges(), Rational(0)));
    out.cons.assign(graph.num_nodes(),
                    std::vector<Rational>(sp.num_tasks(), Rational(0)));
    // Same declaration order as declare_variables.
    std::size_t next = 0;
    for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        if (suppressed_send(instance, sp, iv, graph.edge(e))) continue;
        out.send[iv][e] = sol.primal[next++];
      }
    }
    for (NodeId n : compute_nodes) {
      for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
        out.cons[n][t] = sol.primal[next++];
      }
    }
    out.throughput = sol.primal[next];
  }

  out.certified = sol.certified;
  out.lp_method = sol.method;
  out.lp_pivots = sol.float_iterations + sol.exact_iterations;
  out.lp_basis = std::move(context.warm);
  out.warm_started = sol.warm_started;
  out.lp_colgen_rounds = sol.colgen_rounds;
  out.lp_columns_generated = sol.colgen_columns_generated;
  out.lp_columns_total = sol.colgen_columns_total;
  out.lp_rows_active = sol.colgen_rows_active;
  out.lp_rows_total = sol.colgen_rows_total;
  out.lp_stab_rounds = sol.colgen_stab_rounds;
  out.lp_phase_times = sol.phase_times;

  if (options.prune_cycles) out.prune_cycles(instance);
  return out;
}

}  // namespace ssco::core
