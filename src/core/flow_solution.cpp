#include "core/flow_solution.h"

#include <sstream>

namespace ssco::core {

std::vector<Rational> MultiFlow::edge_occupation(
    const platform::Platform& platform) const {
  std::vector<Rational> occ(platform.num_edges(), Rational(0));
  for (const CommodityFlow& c : commodities) {
    for (EdgeId e = 0; e < occ.size(); ++e) {
      if (!c.edge_flow[e].is_zero()) {
        occ[e] += c.edge_flow[e] * message_size * platform.edge_cost(e);
      }
    }
  }
  return occ;
}

std::string MultiFlow::validate(const platform::Platform& platform) const {
  const auto& graph = platform.graph();
  for (std::size_t ci = 0; ci < commodities.size(); ++ci) {
    const CommodityFlow& c = commodities[ci];
    if (c.edge_flow.size() != graph.num_edges()) {
      return "commodity " + std::to_string(ci) + ": edge_flow size mismatch";
    }
    for (EdgeId e = 0; e < c.edge_flow.size(); ++e) {
      if (c.edge_flow[e].is_negative()) {
        return "commodity " + std::to_string(ci) + ": negative flow on edge " +
               std::to_string(e);
      }
    }
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      Rational in(0), out(0);
      for (EdgeId e : graph.in_edges(n)) in += c.edge_flow[e];
      for (EdgeId e : graph.out_edges(n)) out += c.edge_flow[e];
      if (n == c.origin) {
        if (out - in != c.rate) {
          return "commodity " + std::to_string(ci) +
                 ": origin emission rate mismatch";
        }
      } else if (n == c.destination) {
        if (in - out != c.rate) {
          return "commodity " + std::to_string(ci) +
                 ": destination delivery rate mismatch";
        }
      } else if (in != out) {
        return "commodity " + std::to_string(ci) +
               ": conservation violated at node " + std::to_string(n);
      }
    }
    if (c.rate != throughput) {
      return "commodity " + std::to_string(ci) +
             ": rate differs from common throughput";
    }
  }
  // One-port inequalities (paper eq. 2-3): per-node emission and reception
  // busy-time within one time-unit.
  std::vector<Rational> occ = edge_occupation(platform);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    Rational out_busy(0), in_busy(0);
    for (EdgeId e : graph.out_edges(n)) out_busy += occ[e];
    for (EdgeId e : graph.in_edges(n)) in_busy += occ[e];
    if (out_busy > Rational(1)) {
      return "one-port (send) violated at node " + std::to_string(n);
    }
    if (in_busy > Rational(1)) {
      return "one-port (recv) violated at node " + std::to_string(n);
    }
  }
  return {};
}

void cancel_flow_cycles(const graph::Digraph& graph,
                        std::vector<Rational>& flow) {
  // Iteratively find a directed cycle in the positive-flow subgraph by DFS
  // and subtract the cycle's bottleneck. Each cancellation zeroes at least
  // one edge, so this terminates in <= |E| rounds.
  const std::size_t n = graph.num_nodes();
  while (true) {
    // DFS with colors; on back edge, reconstruct the cycle via the stack.
    std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
    std::vector<EdgeId> stack_edge;  // edges of the current DFS path
    std::vector<NodeId> stack_node;
    bool found = false;
    std::vector<EdgeId> cycle;

    auto dfs = [&](auto&& self, NodeId u) -> bool {
      color[u] = 1;
      stack_node.push_back(u);
      for (EdgeId e : graph.out_edges(u)) {
        if (flow[e].is_zero()) continue;
        NodeId v = graph.edge(e).dst;
        if (color[v] == 1) {
          // Back edge closes a cycle: edges from v to u on the stack, plus e.
          std::size_t pos = 0;
          while (stack_node[pos] != v) ++pos;
          for (std::size_t i = pos; i + 1 < stack_node.size(); ++i) {
            cycle.push_back(stack_edge[i]);
          }
          cycle.push_back(e);
          return true;
        }
        if (color[v] == 0) {
          stack_edge.push_back(e);
          if (self(self, v)) return true;
          stack_edge.pop_back();
        }
      }
      color[u] = 2;
      stack_node.pop_back();
      return false;
    };

    for (NodeId s = 0; s < n && !found; ++s) {
      if (color[s] == 0) {
        stack_edge.clear();
        stack_node.clear();
        found = dfs(dfs, s);
      }
    }
    if (!found) return;

    Rational bottleneck = flow[cycle.front()];
    for (EdgeId e : cycle) bottleneck = Rational::min(bottleneck, flow[e]);
    for (EdgeId e : cycle) flow[e] -= bottleneck;
  }
}

void MultiFlow::prune_cycles(const platform::Platform& platform) {
  for (CommodityFlow& c : commodities) {
    cancel_flow_cycles(platform.graph(), c.edge_flow);
  }
}

}  // namespace ssco::core
