#pragma once
// EXTRACT_TREES / FIND_TREE — paper Fig. 8, Theorem 1.
//
// Decomposes a steady-state reduce solution A into a polynomial-size family
// of weighted reduction trees with  sum_T w(T) * chi_T = A  restricted to the
// used tasks (the remainder of A after extraction is the zero application).
// Each round: FIND_TREE greedily resolves demands starting from (v[0,N-1],
// target), preferring in-place computation over transfers, exactly as in the
// paper; the tree is weighted by the minimum remaining value among its tasks
// and peeled off. Every round zeroes at least one task, giving at most
// 2 n^4 trees (Theorem 1's bound).
//
// Precondition: A validates (exact conservation) and is cycle-free per
// interval — solve_reduce() with the default prune_cycles=true guarantees
// both. Conservation is what makes FIND_TREE's greedy choices always succeed
// (see the invariant H in the paper's proof).

#include <vector>

#include "core/reduce_solution.h"
#include "core/reduction_tree.h"

namespace ssco::core {

struct TreeDecomposition {
  std::vector<ReductionTree> trees;
  /// Sum of tree weights; equals the solution's TP on success.
  Rational total_weight;

  /// Reconstitute sum w(T) * chi_T and compare against `solution` exactly
  /// (only over tasks with positive multiplicity — extraction may leave
  /// unused zero-weight circulation untouched). Empty string when exact.
  [[nodiscard]] std::string verify_reconstitution(
      const platform::ReduceInstance& instance,
      const ReduceSolution& solution) const;
};

/// Runs EXTRACT_TREES on a copy of `solution`.
/// Throws std::logic_error when the solution's conservation is broken (i.e.
/// the precondition does not hold).
[[nodiscard]] TreeDecomposition extract_trees(
    const platform::ReduceInstance& instance, const ReduceSolution& solution);

}  // namespace ssco::core
