#pragma once
// Index spaces for partial-reduction values and reduction tasks (Sec. 4).
//
// A reduce over logical indices 0..n-1 manipulates partial results
// v[k,m] = v_k ⊕ ... ⊕ v_m for contiguous intervals 0 <= k <= m <= n-1, and
// computation tasks T(k,l,m) : v[k,l] ⊕ v[l+1,m] -> v[k,m] for k <= l < m.
// This header provides dense, O(1) bijections between those triples/pairs and
// flat array indices, so LP variables and solution tables can be plain
// vectors.

#include <cstddef>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

namespace ssco::core {

/// Dense enumeration of the intervals [k,m] with 0 <= k <= m < n and of the
/// merge tasks T(k,l,m) with 0 <= k <= l < m < n.
class IntervalSpace {
 public:
  explicit IntervalSpace(std::size_t n) : n_(n) {
    if (n == 0) throw std::invalid_argument("IntervalSpace: n must be >= 1");
    interval_offset_.reserve(n);
    std::size_t offset = 0;
    for (std::size_t k = 0; k < n; ++k) {
      interval_offset_.push_back(offset);
      offset += n - k;  // intervals [k,k], [k,k+1], ..., [k,n-1]
    }
    num_intervals_ = offset;

    // Task T(k,l,m): group by (k,m) pair (the produced interval), l ranges
    // over [k, m-1]; within each produced interval there are m-k choices.
    task_offset_.assign(num_intervals_, 0);
    std::size_t toff = 0;
    for (std::size_t id = 0; id < num_intervals_; ++id) {
      auto [k, m] = interval(id);
      task_offset_[id] = toff;
      toff += m - k;
    }
    num_tasks_ = toff;
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t num_intervals() const { return num_intervals_; }
  [[nodiscard]] std::size_t num_tasks() const { return num_tasks_; }

  /// Flat id of interval [k,m]; requires k <= m < n.
  [[nodiscard]] std::size_t interval_id(std::size_t k, std::size_t m) const {
    check_interval(k, m);
    return interval_offset_[k] + (m - k);
  }
  /// Inverse of interval_id.
  [[nodiscard]] std::pair<std::size_t, std::size_t> interval(
      std::size_t id) const {
    // interval_offset_ is increasing; binary search for the row.
    std::size_t lo = 0, hi = n_ - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi + 1) / 2;
      if (interval_offset_[mid] <= id) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return {lo, lo + (id - interval_offset_[lo])};
  }

  /// Flat id of task T(k,l,m); requires k <= l < m < n.
  [[nodiscard]] std::size_t task_id(std::size_t k, std::size_t l,
                                    std::size_t m) const {
    if (l < k || l >= m) throw std::out_of_range("IntervalSpace: bad task");
    return task_offset_[interval_id(k, m)] + (l - k);
  }
  /// Inverse of task_id: returns (k, l, m).
  [[nodiscard]] std::tuple<std::size_t, std::size_t, std::size_t> task(
      std::size_t id) const {
    // Binary search over task_offset_ (increasing) for the produced interval.
    std::size_t lo = 0, hi = num_intervals_ - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi + 1) / 2;
      if (task_offset_[mid] <= id) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    auto [k, m] = interval(lo);
    return {k, k + (id - task_offset_[lo]), m};
  }

  /// Id of the full interval [0, n-1].
  [[nodiscard]] std::size_t full_interval_id() const {
    return interval_id(0, n_ - 1);
  }

 private:
  void check_interval(std::size_t k, std::size_t m) const {
    if (k > m || m >= n_) {
      throw std::out_of_range("IntervalSpace: bad interval");
    }
  }

  std::size_t n_;
  std::size_t num_intervals_ = 0;
  std::size_t num_tasks_ = 0;
  std::vector<std::size_t> interval_offset_;
  std::vector<std::size_t> task_offset_;
};

}  // namespace ssco::core
