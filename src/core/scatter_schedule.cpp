#include "core/scatter_schedule.h"

#include <stdexcept>

#include "core/edge_coloring.h"
#include "core/integralize.h"

namespace ssco::core {

PeriodicSchedule build_flow_schedule(const platform::Platform& platform,
                                     const MultiFlow& flow,
                                     const ScatterScheduleOptions& options) {
  const auto& graph = platform.graph();
  const num::BigInt period_int = integral_period(flow);
  const Rational period{Rational(period_int)};

  // One weighted bipartite edge per (platform edge, commodity) with traffic.
  struct Payload {
    EdgeId edge;
    std::size_t commodity;
    Rational messages;  // per period
  };
  std::vector<Payload> payloads;
  std::vector<BipartiteEdge> bip;
  for (std::size_t k = 0; k < flow.commodities.size(); ++k) {
    const CommodityFlow& c = flow.commodities[k];
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (c.edge_flow[e].is_zero()) continue;
      Rational messages = c.edge_flow[e] * period;
      Rational busy = messages * flow.message_size * platform.edge_cost(e);
      payloads.push_back(Payload{e, k, messages});
      bip.push_back(BipartiteEdge{graph.edge(e).src, graph.edge(e).dst,
                                  std::move(busy)});
    }
  }

  EdgeColoring coloring =
      color_bipartite(graph.num_nodes(), graph.num_nodes(), bip);
  if (coloring.total_duration > period) {
    throw std::logic_error(
        "build_flow_schedule: coloring exceeds the period (one-port "
        "constraints violated upstream)");
  }

  PeriodicSchedule schedule;
  schedule.period = period;
  Rational cursor(0);
  for (const ColorClass& slice : coloring.slices) {
    for (std::size_t idx : slice.edges) {
      const Payload& p = payloads[idx];
      Rational unit_time = flow.message_size * platform.edge_cost(p.edge);
      CommActivity act;
      act.edge = p.edge;
      act.type = p.commodity;
      act.start = cursor;
      act.end = cursor + slice.duration;
      act.messages = slice.duration / unit_time;
      schedule.comms.push_back(std::move(act));
    }
    cursor += slice.duration;
  }

  if (!options.allow_split_messages && !schedule.has_integral_messages()) {
    std::vector<Rational> counts;
    counts.reserve(schedule.comms.size());
    for (const CommActivity& c : schedule.comms) counts.push_back(c.messages);
    schedule.scale(Rational(integral_period(counts)));
  }
  return schedule;
}

}  // namespace ssco::core
