#pragma once
// Series-of-Gathers steady state.
//
// The paper's abstract groups "gather/reduce" together: a gather is the
// scatter's mirror — every source P_s streams a distinct message type m_s to
// ONE sink. Formally it is the personalized all-to-all SSPA2A(G) restricted
// to a single target, so this module is a thin, role-checked reduction to
// the gossip LP; it exists so user code can say what it means. (A reduce
// degenerates to a gather when the operator ⊕ is concatenation and no
// intermediate combining is wanted.)

#include "core/flow_solution.h"
#include "core/gossip_lp.h"

namespace ssco::core {

struct GatherLpOptions {
  lp::ExactSolverOptions solver;
  bool prune_cycles = true;
};

/// Commodity i of the result carries sources[i]'s message type.
/// Requires the sink to be distinct from every source and reachable.
/// `previous` (optional) warm-starts the solve from that solution's optimal
/// basis — see solve_scatter.
[[nodiscard]] MultiFlow solve_gather(const platform::Platform& platform,
                                     const std::vector<NodeId>& sources,
                                     NodeId sink, const Rational& message_size,
                                     const GatherLpOptions& options = {},
                                     const MultiFlow* previous = nullptr);

}  // namespace ssco::core
