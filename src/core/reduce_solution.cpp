#include "core/reduce_solution.h"

#include "core/flow_solution.h"

namespace ssco::core {

std::vector<Rational> ReduceSolution::edge_occupation(
    const platform::ReduceInstance& instance) const {
  std::vector<Rational> occ(instance.platform.num_edges(), Rational(0));
  for (const auto& per_edge : send) {
    for (EdgeId e = 0; e < occ.size(); ++e) {
      if (!per_edge[e].is_zero()) {
        occ[e] +=
            per_edge[e] * instance.message_size * instance.platform.edge_cost(e);
      }
    }
  }
  return occ;
}

std::vector<Rational> ReduceSolution::compute_load(
    const platform::ReduceInstance& instance) const {
  std::vector<Rational> load(instance.platform.num_nodes(), Rational(0));
  for (NodeId n = 0; n < load.size(); ++n) {
    Rational total(0);
    for (const Rational& c : cons[n]) total += c;
    if (!total.is_zero()) {
      load[n] = total * instance.task_work / instance.platform.node_speed(n);
    }
  }
  return load;
}

Rational ReduceSolution::net_balance(const platform::ReduceInstance& instance,
                                     std::size_t interval_id,
                                     NodeId node) const {
  const IntervalSpace sp = space();
  const auto& graph = instance.platform.graph();
  auto [k, m] = sp.interval(interval_id);

  Rational net(0);
  for (EdgeId e : graph.in_edges(node)) net += send[interval_id][e];
  for (EdgeId e : graph.out_edges(node)) net -= send[interval_id][e];
  // Produced by local merges T(k,l,m), k <= l < m.
  for (std::size_t l = k; l < m; ++l) {
    net += cons[node][sp.task_id(k, l, m)];
  }
  // Consumed as the left input of T(k,m,x) for x > m, or as the right input
  // of T(x,k-1,m) for x < k.
  for (std::size_t x = m + 1; x < sp.n(); ++x) {
    net -= cons[node][sp.task_id(k, m, x)];
  }
  for (std::size_t x = 0; x < k; ++x) {
    net -= cons[node][sp.task_id(x, k - 1, m)];
  }
  return net;
}

std::string ReduceSolution::validate(
    const platform::ReduceInstance& instance) const {
  const IntervalSpace sp = space();
  const auto& graph = instance.platform.graph();

  if (num_participants != instance.participants.size()) {
    return "participant count mismatch";
  }
  if (send.size() != sp.num_intervals()) return "send table size mismatch";
  for (const auto& per_edge : send) {
    if (per_edge.size() != graph.num_edges()) return "send row size mismatch";
    for (const Rational& v : per_edge) {
      if (v.is_negative()) return "negative send value";
    }
  }
  if (cons.size() != graph.num_nodes()) return "cons table size mismatch";
  for (const auto& per_task : cons) {
    if (per_task.size() != sp.num_tasks()) return "cons row size mismatch";
    for (const Rational& v : per_task) {
      if (v.is_negative()) return "negative cons value";
    }
  }

  // One-port rows.
  std::vector<Rational> occ = edge_occupation(instance);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    Rational out_busy(0), in_busy(0);
    for (EdgeId e : graph.out_edges(n)) out_busy += occ[e];
    for (EdgeId e : graph.in_edges(n)) in_busy += occ[e];
    if (out_busy > Rational(1)) {
      return "one-port (send) violated at node " + std::to_string(n);
    }
    if (in_busy > Rational(1)) {
      return "one-port (recv) violated at node " + std::to_string(n);
    }
  }
  // Compute rows (paper eq. 7/9: alpha(P_i) <= 1).
  for (const Rational& load : compute_load(instance)) {
    if (load > Rational(1)) return "compute load exceeds 1";
  }

  // Conservation law (paper eq. 10) with its two exclusions, plus the
  // throughput row (eq. 11).
  const std::size_t full = sp.full_interval_id();
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    auto [k, m] = sp.interval(iv);
    for (NodeId node = 0; node < graph.num_nodes(); ++node) {
      const bool is_own_singleton =
          k == m && instance.participants[k] == node;
      const bool is_final_at_target = iv == full && node == instance.target;
      Rational net = net_balance(instance, iv, node);
      if (is_own_singleton) {
        // Unlimited supply: net consumption allowed (net <= 0 not even
        // required by the LP; any sign is tolerated by the paper, but a
        // positive net here would mean the node conjures foreign copies).
        continue;
      }
      if (is_final_at_target) {
        if (net != throughput) {
          return "target absorbs " + net.to_string() + " != TP " +
                 throughput.to_string();
        }
        continue;
      }
      if (!net.is_zero()) {
        return "conservation violated for v[" + std::to_string(k) + "," +
               std::to_string(m) + "] at node " + std::to_string(node);
      }
    }
  }
  return {};
}

void ReduceSolution::prune_cycles(const platform::ReduceInstance& instance) {
  for (auto& per_edge : send) {
    cancel_flow_cycles(instance.platform.graph(), per_edge);
  }
}

}  // namespace ssco::core
