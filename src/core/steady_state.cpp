#include "core/steady_state.h"

namespace ssco::core {

FlowPlan optimize_scatter(const platform::ScatterInstance& instance,
                          const PlanOptions& options,
                          const FlowPlan* previous) {
  ScatterLpOptions lp_options;
  lp_options.solver = options.solver;
  FlowPlan plan;
  plan.flow =
      solve_scatter(instance, lp_options, previous ? &previous->flow : nullptr);
  ScatterScheduleOptions sched_options;
  sched_options.allow_split_messages = options.allow_split_messages;
  plan.schedule =
      build_flow_schedule(instance.platform, plan.flow, sched_options);
  return plan;
}

FlowPlan optimize_gossip(const platform::GossipInstance& instance,
                         const PlanOptions& options,
                         const FlowPlan* previous) {
  GossipLpOptions lp_options;
  lp_options.solver = options.solver;
  FlowPlan plan;
  plan.flow =
      solve_gossip(instance, lp_options, previous ? &previous->flow : nullptr);
  ScatterScheduleOptions sched_options;
  sched_options.allow_split_messages = options.allow_split_messages;
  plan.schedule =
      build_flow_schedule(instance.platform, plan.flow, sched_options);
  return plan;
}

ReducePlan optimize_reduce(const platform::ReduceInstance& instance,
                           const PlanOptions& options,
                           const ReducePlan* previous) {
  ReduceLpOptions lp_options;
  lp_options.solver = options.solver;
  ReducePlan plan;
  plan.solution = solve_reduce(instance, lp_options,
                               previous ? &previous->solution : nullptr);
  plan.trees = extract_trees(instance, plan.solution);
  ReduceScheduleOptions sched_options;
  sched_options.allow_split_messages = options.allow_split_messages;
  plan.schedule = build_reduce_schedule(instance, plan.trees, sched_options);
  return plan;
}

}  // namespace ssco::core
