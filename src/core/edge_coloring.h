#pragma once
// Weighted bipartite edge coloring (paper Sec. 3.3, citing Schrijver vol. A
// ch. 20).
//
// Input: a bipartite multigraph over "sender ports" U and "receiver ports" V
// with positive rational edge weights (busy times within one period). Output:
// a decomposition into weighted matchings — time slices in which every port
// serves at most one transfer — whose per-edge durations sum exactly to the
// edge weights, and whose total duration equals the maximum weighted degree
// Delta (which the one-port constraints bound by the period).
//
// Algorithm (Birkhoff-von-Neumann style):
//  1. pad with dummy edges until every node has weighted degree exactly
//     Delta (always possible: both sides then carry total weight
//     Delta * S for S = max(|U|, |V|) after padding the node sets);
//  2. repeatedly extract a perfect matching of the support graph (existence
//     is Hall's theorem for regular weighted bipartite graphs) and peel it
//     off with the minimum matched weight; each round zeroes at least one
//     edge, so at most |E| + dummies rounds run;
//  3. report matchings with dummy edges stripped (they are idle time).

#include <vector>

#include "num/rational.h"

namespace ssco::core {

using num::Rational;

struct BipartiteEdge {
  std::size_t u = 0;  // sender-side node
  std::size_t v = 0;  // receiver-side node
  Rational weight;    // busy time; must be > 0
};

struct ColorClass {
  Rational duration;
  /// Indices into the input edge vector active during this slice.
  std::vector<std::size_t> edges;
};

struct EdgeColoring {
  std::vector<ColorClass> slices;
  /// Equals the maximum weighted degree of the input.
  Rational total_duration;
};

/// Decomposes the weighted bipartite multigraph. `num_u`/`num_v` bound the
/// node indices appearing in `edges`. Parallel edges are allowed.
[[nodiscard]] EdgeColoring color_bipartite(std::size_t num_u, std::size_t num_v,
                                           const std::vector<BipartiteEdge>& edges);

}  // namespace ssco::core
