#include "core/tree_extract.h"

#include <stdexcept>
#include <vector>

namespace ssco::core {

namespace {

/// FIND_TREE (paper Fig. 8): resolve demands from the root down, preferring
/// local computation, then any incoming transfer with remaining value.
ReductionTree find_tree(const platform::ReduceInstance& instance,
                        const IntervalSpace& sp, const ReduceSolution& a) {
  const auto& graph = instance.platform.graph();
  ReductionTree tree;
  struct Demand {
    std::size_t interval;
    graph::NodeId node;
  };
  std::vector<Demand> inputs{{sp.full_interval_id(), instance.target}};

  while (!inputs.empty()) {
    Demand d = inputs.back();
    inputs.pop_back();
    auto [k, m] = sp.interval(d.interval);

    // Original value in place: the demand is a leaf.
    if (k == m && instance.participants[k] == d.node) continue;

    // Preferred: the message is computed in place (paper line 6).
    bool resolved = false;
    for (std::size_t l = k; l < m && !resolved; ++l) {
      std::size_t task = sp.task_id(k, l, m);
      if (a.cons[d.node][task].signum() > 0) {
        tree.tasks.push_back(TreeTask::compute(d.node, task));
        inputs.push_back({sp.interval_id(k, l), d.node});
        inputs.push_back({sp.interval_id(l + 1, m), d.node});
        resolved = true;
      }
    }
    if (resolved) continue;

    // Otherwise: received from a neighbour (paper line 11).
    for (graph::EdgeId e : graph.in_edges(d.node)) {
      if (a.send[d.interval][e].signum() > 0) {
        tree.tasks.push_back(TreeTask::transfer(e, d.interval));
        inputs.push_back({d.interval, graph.edge(e).src});
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      throw std::logic_error(
          "FIND_TREE: demand for v[" + std::to_string(k) + "," +
          std::to_string(m) + "] at node " + std::to_string(d.node) +
          " cannot be satisfied — input solution violates conservation");
    }
  }
  return tree;
}

Rational& value_of(ReduceSolution& a, const TreeTask& t) {
  return t.kind == TreeTask::Kind::kTransfer ? a.send[t.interval][t.edge]
                                             : a.cons[t.node][t.task];
}

}  // namespace

TreeDecomposition extract_trees(const platform::ReduceInstance& instance,
                                const ReduceSolution& solution) {
  const IntervalSpace sp(instance.participants.size());
  ReduceSolution a = solution;  // consumed working copy

  TreeDecomposition out;
  out.total_weight = Rational(0);

  // Theorem 1's bound on the number of extractable trees; exceeding it means
  // the greedy loop is not making progress (a bug or a bad input).
  const std::size_t n = instance.platform.num_nodes();
  const std::size_t max_trees = 2 * n * n * n * n + 2;

  while (out.total_weight < solution.throughput) {
    if (out.trees.size() > max_trees) {
      throw std::logic_error("extract_trees: exceeded the 2n^4 tree bound");
    }
    ReductionTree tree = find_tree(instance, sp, a);
    if (tree.tasks.empty()) {
      // Root demand satisfied with no task: only possible when the target
      // owns the full interval locally, which solve_reduce forbids.
      throw std::logic_error("extract_trees: empty tree extracted");
    }
    Rational weight = value_of(a, tree.tasks.front());
    for (const TreeTask& t : tree.tasks) {
      weight = Rational::min(weight, value_of(a, t));
    }
    // Never exceed the remaining throughput (the final tree may be capped:
    // leftover circulation in A must not inflate total weight past TP).
    weight = Rational::min(weight, solution.throughput - out.total_weight);
    if (weight.signum() <= 0) {
      throw std::logic_error("extract_trees: non-positive tree weight");
    }
    for (const TreeTask& t : tree.tasks) {
      value_of(a, t) -= weight;
    }
    tree.weight = weight;
    out.total_weight += weight;
    out.trees.push_back(std::move(tree));
  }
  return out;
}

std::string TreeDecomposition::verify_reconstitution(
    const platform::ReduceInstance& instance,
    const ReduceSolution& solution) const {
  const IntervalSpace sp(instance.participants.size());
  const auto& graph = instance.platform.graph();

  std::vector<std::vector<Rational>> send(
      sp.num_intervals(),
      std::vector<Rational>(graph.num_edges(), Rational(0)));
  std::vector<std::vector<Rational>> cons(
      graph.num_nodes(), std::vector<Rational>(sp.num_tasks(), Rational(0)));
  Rational total(0);
  for (const ReductionTree& tree : trees) {
    total += tree.weight;
    for (const TreeTask& t : tree.tasks) {
      if (t.kind == TreeTask::Kind::kTransfer) {
        send[t.interval][t.edge] += tree.weight;
      } else {
        cons[t.node][t.task] += tree.weight;
      }
    }
  }
  if (total != solution.throughput) {
    return "tree weights sum to " + total.to_string() + ", expected TP = " +
           solution.throughput.to_string();
  }
  // The reconstruction must never exceed the solution (trees use only value
  // present in A); equality holds wherever the trees put positive weight.
  for (std::size_t iv = 0; iv < sp.num_intervals(); ++iv) {
    for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (send[iv][e] > solution.send[iv][e]) {
        return "tree family over-uses a transfer task";
      }
    }
  }
  for (graph::NodeId node = 0; node < graph.num_nodes(); ++node) {
    for (std::size_t t = 0; t < sp.num_tasks(); ++t) {
      if (cons[node][t] > solution.cons[node][t]) {
        return "tree family over-uses a compute task";
      }
    }
  }
  return {};
}

}  // namespace ssco::core
