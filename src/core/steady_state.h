#pragma once
// Umbrella header and one-call convenience API.
//
// The individual headers expose each pipeline stage; these helpers run the
// full paper pipeline in one call for the common case:
//
//   auto result = ssco::core::optimize_scatter(instance);
//   result.flow.throughput;   // exact optimal TP
//   result.schedule;          // one-port-safe periodic schedule
//
// and equivalently optimize_gossip / optimize_reduce (which also carries the
// reduction-tree family of Sec. 4.3/4.4).

#include "core/edge_coloring.h"
#include "core/flow_solution.h"
#include "core/gather_lp.h"
#include "core/gossip_lp.h"
#include "core/integralize.h"
#include "core/intervals.h"
#include "core/period_approx.h"
#include "core/prefix_lp.h"
#include "core/reduce_lp.h"
#include "core/reduce_schedule.h"
#include "core/reduce_solution.h"
#include "core/reduction_tree.h"
#include "core/scatter_lp.h"
#include "core/scatter_schedule.h"
#include "core/schedule.h"
#include "core/tree_extract.h"

namespace ssco::core {

/// LP solution + realized periodic schedule for scatter/gossip.
struct FlowPlan {
  MultiFlow flow;
  PeriodicSchedule schedule;
};

/// LP solution + tree family + realized periodic schedule for reduce.
struct ReducePlan {
  ReduceSolution solution;
  TreeDecomposition trees;
  PeriodicSchedule schedule;
};

struct PlanOptions {
  bool allow_split_messages = true;
  lp::ExactSolverOptions solver;
};

/// solve_scatter + build_flow_schedule in one call.
///
/// `previous` (optional) re-solves INCREMENTALLY from that plan's optimal
/// basis — the intended loop for a live platform: keep the returned plan,
/// mutate the platform (platform::apply_delta), and pass the old plan back
/// in. The LP warm-starts through the dual simplex and the result is
/// re-certified exactly, so an incremental plan is indistinguishable from a
/// cold one (besides being much cheaper to compute).
[[nodiscard]] FlowPlan optimize_scatter(
    const platform::ScatterInstance& instance, const PlanOptions& options = {},
    const FlowPlan* previous = nullptr);

/// solve_gossip + build_flow_schedule in one call (incremental like
/// optimize_scatter when `previous` is given).
[[nodiscard]] FlowPlan optimize_gossip(const platform::GossipInstance& instance,
                                       const PlanOptions& options = {},
                                       const FlowPlan* previous = nullptr);

/// solve_reduce + extract_trees + build_reduce_schedule in one call
/// (incremental like optimize_scatter when `previous` is given).
[[nodiscard]] ReducePlan optimize_reduce(
    const platform::ReduceInstance& instance, const PlanOptions& options = {},
    const ReducePlan* previous = nullptr);

}  // namespace ssco::core
