#include "io/dot_export.h"

#include <map>
#include <sstream>

#include "core/intervals.h"
#include "graph/dot.h"

namespace ssco::io {

using num::Rational;

std::string platform_to_dot(const platform::Platform& platform,
                            const std::vector<graph::NodeId>& highlight) {
  graph::DotOptions options;
  options.graph_name = "platform";
  options.node_label.resize(platform.num_nodes());
  options.node_color.resize(platform.num_nodes());
  for (graph::NodeId n = 0; n < platform.num_nodes(); ++n) {
    options.node_label[n] = platform.node_name(n);
    if (platform.node_speed(n) != Rational(1)) {
      options.node_label[n] += "\nspeed " + platform.node_speed(n).to_string();
    }
  }
  for (graph::NodeId n : highlight) {
    options.node_color[n] = "lightgray";
  }
  options.edge_label.resize(platform.num_edges());
  for (graph::EdgeId e = 0; e < platform.num_edges(); ++e) {
    options.edge_label[e] = platform.edge_cost(e).to_string();
  }
  return graph::to_dot(platform.graph(), options);
}

std::string reduction_tree_to_dot(const platform::ReduceInstance& instance,
                                  const core::ReductionTree& tree) {
  const core::IntervalSpace sp(instance.participants.size());
  const auto& graph = instance.platform.graph();
  using Location = std::pair<std::size_t, graph::NodeId>;  // (interval, node)

  // Each validated tree produces every (interval, node) at most once.
  std::map<Location, std::size_t> producer;
  for (std::size_t t = 0; t < tree.tasks.size(); ++t) {
    const core::TreeTask& task = tree.tasks[t];
    if (task.kind == core::TreeTask::Kind::kTransfer) {
      producer[{task.interval, graph.edge(task.edge).dst}] = t;
    } else {
      auto [k, l, m] = sp.task(task.task);
      producer[{sp.interval_id(k, m), task.node}] = t;
    }
  }

  std::ostringstream os;
  os << "digraph reduction_tree {\n  rankdir=BT;\n  node [shape=box];\n";
  for (std::size_t t = 0; t < tree.tasks.size(); ++t) {
    const core::TreeTask& task = tree.tasks[t];
    os << "  t" << t << " [label=\"";
    if (task.kind == core::TreeTask::Kind::kTransfer) {
      auto [k, m] = sp.interval(task.interval);
      os << "transfer [" << k << "," << m << "]\\n"
         << graph.edge(task.edge).src << " -> " << graph.edge(task.edge).dst;
    } else {
      auto [k, l, m] = sp.task(task.task);
      os << "cons[" << k << "," << l << "," << m << "]\\nin node "
         << task.node;
    }
    os << "\"];\n";
  }

  std::size_t next_leaf = 0;
  auto emit_input = [&](std::size_t consumer, const Location& loc) {
    auto it = producer.find(loc);
    if (it != producer.end()) {
      os << "  t" << it->second << " -> t" << consumer << ";\n";
      return;
    }
    // Leaf: an original value on its owner.
    auto [iv, node] = loc;
    auto [k, m] = sp.interval(iv);
    (void)m;
    os << "  leaf" << next_leaf << " [shape=ellipse, label=\"v" << k
       << " on node " << node << "\"];\n";
    os << "  leaf" << next_leaf << " -> t" << consumer << ";\n";
    ++next_leaf;
  };

  for (std::size_t t = 0; t < tree.tasks.size(); ++t) {
    const core::TreeTask& task = tree.tasks[t];
    if (task.kind == core::TreeTask::Kind::kTransfer) {
      emit_input(t, {task.interval, graph.edge(task.edge).src});
    } else {
      auto [k, l, m] = sp.task(task.task);
      emit_input(t, {sp.interval_id(k, l), task.node});
      emit_input(t, {sp.interval_id(l + 1, m), task.node});
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ssco::io
