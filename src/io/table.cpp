#include "io/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ssco::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ssco::io
