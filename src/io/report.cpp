#include "io/report.h"

#include <cmath>
#include <sstream>

namespace ssco::io {

std::string pretty(const num::Rational& value, int digits) {
  if (value.is_integer()) return value.to_string();
  std::ostringstream os;
  os << value.to_string() << " (~" << std::fixed;
  os.precision(digits);
  os << value.to_double() << ")";
  return os.str();
}

std::string ratio(const num::Rational& numerator,
                  const num::Rational& denominator, int digits) {
  std::ostringstream os;
  os << std::fixed;
  os.precision(digits);
  if (denominator.is_zero()) {
    os << "inf";
  } else {
    os << (numerator / denominator).to_double() << "x";
  }
  return os.str();
}

std::string banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  return bar + "\n| " + title + " |\n" + bar + "\n";
}

std::string percent(double fraction, int digits) {
  std::ostringstream os;
  os << std::fixed;
  os.precision(digits);
  os << fraction * 100.0 << "%";
  return os.str();
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed;
  os.precision(digits);
  os << value;
  return os.str();
}

std::string millis(std::uint64_t nanos, int digits) {
  return fixed(static_cast<double>(nanos) / 1e6, digits) + " ms";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
    }
  }
  return out;
}

}  // namespace ssco::io
