#pragma once
// Fixed-width text tables for the benchmark harness output.
//
// The benches print the paper's figures as aligned tables; this tiny
// formatter keeps them readable without dragging in a dependency.

#include <iosfwd>
#include <string>
#include <vector>

namespace ssco::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Renders with a header rule; columns auto-sized, left-aligned.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssco::io
