#pragma once
// Graphviz rendering of platforms and reduction trees — the visual artifacts
// of the paper's Figs. 2(a), 9 (platforms) and 5, 11, 12 (reduction trees).

#include <string>
#include <vector>

#include "core/reduction_tree.h"
#include "platform/paper_instances.h"
#include "platform/platform.h"

namespace ssco::io {

/// DOT of a platform: nodes labeled "name (speed)" (speed shown when != 1),
/// physical links labeled with their cost; `highlight` nodes (e.g.
/// participants) are filled gray like the paper's Fig. 9.
[[nodiscard]] std::string platform_to_dot(
    const platform::Platform& platform,
    const std::vector<graph::NodeId>& highlight = {});

/// DOT of a reduction tree in the Fig. 11/12 style: one box per task
/// ("transfer [k,m] i->j" / "cons[k,l,m] in node n"), edges from producer to
/// consumer, original values as ellipse leaves.
[[nodiscard]] std::string reduction_tree_to_dot(
    const platform::ReduceInstance& instance, const core::ReductionTree& tree);

}  // namespace ssco::io
