#pragma once
// Small formatting helpers shared by benches and examples.

#include <cstdint>
#include <string>

#include "num/rational.h"

namespace ssco::io {

/// "2/9 (~0.2222)" — exact value with a decimal hint.
[[nodiscard]] std::string pretty(const num::Rational& value, int digits = 4);

/// "1.83x" style ratio formatting.
[[nodiscard]] std::string ratio(const num::Rational& numerator,
                                const num::Rational& denominator,
                                int digits = 2);

/// Section banner for bench output.
[[nodiscard]] std::string banner(const std::string& title);

/// "93.1%" — percentage rendering of a [0, 1] fraction.
[[nodiscard]] std::string percent(double fraction, int digits = 1);

/// Fixed-point decimal, e.g. fixed(12.345, 2) == "12.35".
[[nodiscard]] std::string fixed(double value, int digits = 2);

/// Milliseconds rendering of a nanosecond count, e.g. millis(12'345'678)
/// == "12.35 ms" — used for the solver's FTRAN/BTRAN/pricing/factor
/// wall-clock breakdown (lp::SolverStats).
[[nodiscard]] std::string millis(std::uint64_t nanos, int digits = 2);

/// JSON string-literal escaping (quotes, backslashes; control characters
/// become spaces) for the machine-readable emitters — the trace exporter
/// and metric snapshots write JSON by hand rather than pulling in a
/// dependency the container does not have.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace ssco::io
