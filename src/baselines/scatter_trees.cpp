#include "baselines/scatter_trees.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/paths.h"

namespace ssco::baselines {

FixedRouteResult scatter_shortest_path(
    const platform::ScatterInstance& instance) {
  auto tree = graph::dijkstra(instance.platform.graph(),
                              instance.platform.edge_costs(), instance.source);
  std::vector<std::vector<EdgeId>> routes;
  routes.reserve(instance.targets.size());
  for (NodeId t : instance.targets) {
    routes.push_back(tree.path_to(t, instance.platform.graph()));
  }
  return evaluate_fixed_routes(instance.platform, std::move(routes),
                               instance.message_size);
}

namespace {

/// Min-max-load path from source to target given current port loads.
/// Cost of a path = max over traversed edges e of
///   max(out_busy[src(e)], in_busy[dst(e)]) + size * c(e),
/// i.e. the worst port load after adding this route. Ties broken by total
/// transfer time. Dijkstra works because both components are monotone
/// non-decreasing along a path.
std::vector<EdgeId> min_max_load_path(const platform::Platform& platform,
                                      const std::vector<Rational>& out_busy,
                                      const std::vector<Rational>& in_busy,
                                      NodeId source, NodeId target,
                                      const Rational& message_size) {
  const auto& graph = platform.graph();
  using Cost = std::pair<Rational, Rational>;  // (bottleneck, total time)
  std::vector<std::optional<Cost>> best(graph.num_nodes());
  std::vector<EdgeId> parent(graph.num_nodes(), graph::kInvalidId);

  using Entry = std::pair<Cost, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) { return b.first < a.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  best[source] = Cost{Rational(0), Rational(0)};
  heap.push({*best[source], source});
  std::vector<bool> settled(graph.num_nodes(), false);

  while (!heap.empty()) {
    auto [cost, node] = heap.top();
    heap.pop();
    if (settled[node]) continue;
    settled[node] = true;
    if (node == target) break;
    for (EdgeId e : graph.out_edges(node)) {
      NodeId next = graph.edge(e).dst;
      if (settled[next]) continue;
      Rational added = message_size * platform.edge_cost(e);
      Rational port_after = Rational::max(out_busy[node] + added,
                                          in_busy[next] + added);
      Cost cand{Rational::max(cost.first, port_after), cost.second + added};
      if (!best[next] || cand < *best[next]) {
        best[next] = cand;
        parent[next] = e;
        heap.push({cand, next});
      }
    }
  }
  if (!best[target]) {
    throw std::invalid_argument("min_max_load_path: target unreachable");
  }
  std::vector<EdgeId> path;
  for (NodeId cur = target; cur != source;) {
    EdgeId e = parent[cur];
    path.push_back(e);
    cur = graph.edge(e).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

FixedRouteResult scatter_greedy_congestion(
    const platform::ScatterInstance& instance) {
  const auto& graph = instance.platform.graph();
  std::vector<Rational> out_busy(graph.num_nodes(), Rational(0));
  std::vector<Rational> in_busy(graph.num_nodes(), Rational(0));
  std::vector<std::vector<EdgeId>> routes;
  routes.reserve(instance.targets.size());
  for (NodeId t : instance.targets) {
    std::vector<EdgeId> path =
        min_max_load_path(instance.platform, out_busy, in_busy,
                          instance.source, t, instance.message_size);
    for (EdgeId e : path) {
      Rational time = instance.message_size * instance.platform.edge_cost(e);
      out_busy[graph.edge(e).src] += time;
      in_busy[graph.edge(e).dst] += time;
    }
    routes.push_back(std::move(path));
  }
  return evaluate_fixed_routes(instance.platform, std::move(routes),
                               instance.message_size);
}

}  // namespace ssco::baselines
