#pragma once
// Fixed-routing scatter baselines.
//
// What a conventional collective library does on a heterogeneous platform:
// route every target's stream along one fixed path. Two route families:
//  * shortest-path: each target served along its minimum-transfer-time path
//    (what a latency-oriented MPI scatter over a routing table gives);
//  * congestion-aware greedy: targets routed one at a time along the path
//    minimizing the resulting worst port load (a strong single-path
//    heuristic — the gap that remains against the LP is the value of
//    *fractional multi-path* routing, visible already in Fig. 2).
//
// Both are upper-bounded by the LP optimum (a fixed routing is a feasible
// point of SSSP(G)) — a property the tests assert.

#include "baselines/fixed_route.h"
#include "platform/paper_instances.h"

namespace ssco::baselines {

/// Routes every target along its shortest path from the source.
[[nodiscard]] FixedRouteResult scatter_shortest_path(
    const platform::ScatterInstance& instance);

/// Greedy congestion-aware routing: targets (in instance order) are routed
/// along a min-max-load path given the load of previously routed targets.
[[nodiscard]] FixedRouteResult scatter_greedy_congestion(
    const platform::ScatterInstance& instance);

}  // namespace ssco::baselines
