#pragma once
// Fixed-routing gossip (personalized all-to-all) baseline: every
// (source, target) pair's stream follows the shortest path. Feasible for
// SSPA2A(G), hence dominated by the LP optimum.

#include "baselines/fixed_route.h"
#include "platform/paper_instances.h"

namespace ssco::baselines {

/// Routes in the same commodity order as core::solve_gossip (each source in
/// order, each distinct target in order).
[[nodiscard]] FixedRouteResult gossip_shortest_path(
    const platform::GossipInstance& instance);

}  // namespace ssco::baselines
