#include "baselines/makespan.h"

#include <optional>
#include <stdexcept>

#include "core/intervals.h"
#include "graph/paths.h"

namespace ssco::baselines {

namespace {

using graph::EdgeId;
using graph::NodeId;

Rational rational_max(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}

}  // namespace

MakespanResult scatter_makespan(const platform::ScatterInstance& instance) {
  const auto& graph = instance.platform.graph();
  auto sp = graph::dijkstra(graph, instance.platform.edge_costs(),
                            instance.source);

  // Per-message state: remaining hops of the shortest path, current arrival
  // time at the head node.
  struct Message {
    std::vector<EdgeId> path;
    std::size_t next_hop = 0;
    Rational available{0};
  };
  std::vector<Message> messages;
  for (NodeId t : instance.targets) {
    Message m;
    m.path = sp.path_to(t, graph);
    messages.push_back(std::move(m));
  }

  std::vector<Rational> out_free(graph.num_nodes(), Rational(0));
  std::vector<Rational> in_free(graph.num_nodes(), Rational(0));
  MakespanResult result;
  result.makespan = Rational(0);

  // Earliest-finish-time list scheduling over single store-and-forward hops;
  // ties go to the message with the most hops still ahead (the classic
  // critical-path tie-break).
  while (true) {
    std::optional<std::size_t> best;
    Rational best_finish;
    std::size_t best_remaining = 0;
    for (std::size_t i = 0; i < messages.size(); ++i) {
      Message& m = messages[i];
      if (m.next_hop >= m.path.size()) continue;
      EdgeId e = m.path[m.next_hop];
      const auto& edge = graph.edge(e);
      Rational start = rational_max(
          m.available, rational_max(out_free[edge.src], in_free[edge.dst]));
      Rational finish =
          start + instance.message_size * instance.platform.edge_cost(e);
      const std::size_t remaining = m.path.size() - m.next_hop;
      if (!best || finish < best_finish ||
          (finish == best_finish && remaining > best_remaining)) {
        best = i;
        best_finish = finish;
        best_remaining = remaining;
      }
    }
    if (!best) break;
    Message& m = messages[*best];
    EdgeId e = m.path[m.next_hop];
    const auto& edge = graph.edge(e);
    out_free[edge.src] = best_finish;
    in_free[edge.dst] = best_finish;
    m.available = best_finish;
    ++m.next_hop;
    ++result.transfers;
    result.makespan = rational_max(result.makespan, best_finish);
  }

  if (result.makespan.is_zero()) {
    throw std::invalid_argument("scatter_makespan: nothing to schedule");
  }
  result.serial_throughput = result.makespan.reciprocal();
  return result;
}

MakespanResult reduce_makespan(const platform::ReduceInstance& instance) {
  const auto& graph = instance.platform.graph();
  const std::size_t n = instance.participants.size();

  // All-pairs shortest path times (per unit size) between involved nodes.
  std::vector<graph::ShortestPathTree> sp;
  sp.reserve(graph.num_nodes());
  for (NodeId s = 0; s < graph.num_nodes(); ++s) {
    sp.push_back(graph::dijkstra(graph, instance.platform.edge_costs(), s));
  }
  auto path_time = [&](NodeId from, NodeId to) -> Rational {
    if (from == to) return Rational(0);
    if (!sp[from].reachable(to)) {
      throw std::invalid_argument("reduce_makespan: disconnected roles");
    }
    return *sp[from].distance[to] * instance.message_size;
  };

  struct Fragment {
    std::size_t k;
    std::size_t m;
    NodeId node;
    Rational available;
  };
  std::vector<Fragment> fragments;
  for (std::size_t i = 0; i < n; ++i) {
    fragments.push_back({i, i, instance.participants[i], Rational(0)});
  }
  std::vector<Rational> out_free(graph.num_nodes(), Rational(0));
  std::vector<Rational> in_free(graph.num_nodes(), Rational(0));
  std::vector<Rational> cpu_free(graph.num_nodes(), Rational(0));

  MakespanResult result;
  result.makespan = Rational(0);

  // Greedily merge the adjacent pair (at either endpoint) that finishes
  // first. A transfer occupies the endpoints' ports for the full path time
  // (routers transparent — an optimistic relaxation that only strengthens
  // this baseline).
  while (fragments.size() > 1) {
    struct Plan {
      std::size_t left;
      std::size_t right;
      bool merge_at_left;
      Rational transfer_start;
      Rational transfer_end;
      Rational finish;
    };
    std::optional<Plan> best;
    for (std::size_t a = 0; a < fragments.size(); ++a) {
      for (std::size_t b = 0; b < fragments.size(); ++b) {
        if (a == b || fragments[a].m + 1 != fragments[b].k) continue;
        for (bool at_left : {true, false}) {
          const Fragment& mover = at_left ? fragments[b] : fragments[a];
          const Fragment& host = at_left ? fragments[a] : fragments[b];
          Plan plan;
          plan.left = a;
          plan.right = b;
          plan.merge_at_left = at_left;
          Rational transfer = path_time(mover.node, host.node);
          if (transfer.is_zero()) {
            plan.transfer_start = mover.available;
            plan.transfer_end = mover.available;
          } else {
            plan.transfer_start =
                rational_max(mover.available,
                             rational_max(out_free[mover.node],
                                          in_free[host.node]));
            plan.transfer_end = plan.transfer_start + transfer;
          }
          Rational inputs_ready =
              rational_max(plan.transfer_end, host.available);
          Rational compute_start =
              rational_max(inputs_ready, cpu_free[host.node]);
          plan.finish = compute_start + instance.platform.compute_time(
                                            host.node, instance.task_work);
          // Ties go to the host closer to the final target (saves the last
          // shipment).
          if (!best || plan.finish < best->finish ||
              (plan.finish == best->finish &&
               path_time(host.node, instance.target) <
                   path_time(best->merge_at_left
                                 ? fragments[best->left].node
                                 : fragments[best->right].node,
                             instance.target))) {
            best = plan;
          }
        }
      }
    }
    if (!best) {
      throw std::logic_error("reduce_makespan: no adjacent pair found");
    }
    const Fragment& mover =
        best->merge_at_left ? fragments[best->right] : fragments[best->left];
    const Fragment& host =
        best->merge_at_left ? fragments[best->left] : fragments[best->right];
    if (!(best->transfer_end == best->transfer_start)) {
      out_free[mover.node] = best->transfer_end;
      in_free[host.node] = best->transfer_end;
      ++result.transfers;
    }
    cpu_free[host.node] = best->finish;
    Fragment merged{fragments[best->left].k, fragments[best->right].m,
                    host.node, best->finish};
    // Remove both fragments (higher index first) and insert the merge.
    std::size_t hi = std::max(best->left, best->right);
    std::size_t lo = std::min(best->left, best->right);
    fragments.erase(fragments.begin() + static_cast<long>(hi));
    fragments.erase(fragments.begin() + static_cast<long>(lo));
    fragments.push_back(merged);
    result.makespan = rational_max(result.makespan, merged.available);
  }

  // Ship the final value to the target if needed.
  Fragment& final_fragment = fragments.front();
  if (final_fragment.node != instance.target) {
    Rational transfer = path_time(final_fragment.node, instance.target);
    Rational start = rational_max(
        final_fragment.available,
        rational_max(out_free[final_fragment.node], in_free[instance.target]));
    result.makespan = rational_max(result.makespan, start + transfer);
    ++result.transfers;
  }

  if (result.makespan.is_zero()) {
    throw std::invalid_argument("reduce_makespan: nothing to schedule");
  }
  result.serial_throughput = result.makespan.reciprocal();
  return result;
}

}  // namespace ssco::baselines
