#include "baselines/reduce_trees.h"

#include <stdexcept>

#include "core/intervals.h"
#include "graph/paths.h"

namespace ssco::baselines {

namespace {

using core::IntervalSpace;
using core::TreeTask;
using graph::NodeId;
using platform::ReduceInstance;

/// Appends transfer tasks moving `interval` from `from` to `to` along the
/// shortest path; no-op when from == to.
void add_transfer_path(const ReduceInstance& instance, NodeId from, NodeId to,
                       std::size_t interval, ReductionTree& tree) {
  if (from == to) return;
  auto sp_tree = graph::dijkstra(instance.platform.graph(),
                                 instance.platform.edge_costs(), from);
  for (graph::EdgeId e : sp_tree.path_to(to, instance.platform.graph())) {
    tree.tasks.push_back(TreeTask::transfer(e, interval));
  }
}

}  // namespace

ReductionTree flat_reduce_tree(const ReduceInstance& instance) {
  const std::size_t n = instance.participants.size();
  const IntervalSpace sp(n);
  ReductionTree tree;
  tree.weight = num::Rational(1);
  for (std::size_t i = 0; i < n; ++i) {
    add_transfer_path(instance, instance.participants[i], instance.target,
                      sp.interval_id(i, i), tree);
  }
  // Left-to-right merge entirely on the target: T(0,0,1), T(0,1,2), ...
  for (std::size_t m = 1; m < n; ++m) {
    tree.tasks.push_back(
        TreeTask::compute(instance.target, sp.task_id(0, m - 1, m)));
  }
  return tree;
}

ReductionTree chain_reduce_tree(const ReduceInstance& instance) {
  const std::size_t n = instance.participants.size();
  const IntervalSpace sp(n);
  ReductionTree tree;
  tree.weight = num::Rational(1);
  NodeId holder = instance.participants[0];
  for (std::size_t i = 1; i < n; ++i) {
    // v[0,i-1] travels to participant i, which merges its own value.
    add_transfer_path(instance, holder, instance.participants[i],
                      sp.interval_id(0, i - 1), tree);
    tree.tasks.push_back(
        TreeTask::compute(instance.participants[i], sp.task_id(0, i - 1, i)));
    holder = instance.participants[i];
  }
  add_transfer_path(instance, holder, instance.target, sp.full_interval_id(),
                    tree);
  return tree;
}

namespace {

/// Recursively reduces [k,m]; returns the node holding the result.
NodeId binomial_range(const ReduceInstance& instance, const IntervalSpace& sp,
                      std::size_t k, std::size_t m, ReductionTree& tree) {
  if (k == m) return instance.participants[k];
  const std::size_t l = (k + m) / 2;
  NodeId left = binomial_range(instance, sp, k, l, tree);
  NodeId right = binomial_range(instance, sp, l + 1, m, tree);
  // Merge at the faster endpoint (heterogeneity-aware binomial).
  NodeId merge_at = instance.platform.node_speed(left) <
                            instance.platform.node_speed(right)
                        ? right
                        : left;
  if (merge_at == left) {
    add_transfer_path(instance, right, left, sp.interval_id(l + 1, m), tree);
  } else {
    add_transfer_path(instance, left, right, sp.interval_id(k, l), tree);
  }
  tree.tasks.push_back(TreeTask::compute(merge_at, sp.task_id(k, l, m)));
  return merge_at;
}

}  // namespace

ReductionTree binomial_reduce_tree(const ReduceInstance& instance) {
  const std::size_t n = instance.participants.size();
  const IntervalSpace sp(n);
  ReductionTree tree;
  tree.weight = num::Rational(1);
  NodeId root = binomial_range(instance, sp, 0, n - 1, tree);
  add_transfer_path(instance, root, instance.target, sp.full_interval_id(),
                    tree);
  return tree;
}

num::Rational single_tree_throughput(const ReduceInstance& instance,
                                     const ReductionTree& tree) {
  num::Rational bottleneck = tree.bottleneck_time(instance);
  if (bottleneck.is_zero()) {
    throw std::invalid_argument(
        "single_tree_throughput: tree touches no resources");
  }
  return bottleneck.reciprocal();
}

}  // namespace ssco::baselines
