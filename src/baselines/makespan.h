#pragma once
// Makespan-oriented single-operation scheduling — the approach the paper
// argues AGAINST for series of operations (Sec. 1: "the makespan is not a
// significant measure for such problems").
//
// A conventional system executes each collective with a schedule that
// minimizes that one operation's completion time, then starts the next
// operation. We implement a strong greedy makespan scheduler for a single
// scatter (store-and-forward, one-port, earliest-finish-time list
// scheduling over the LP-free platform) and for a single reduce (greedy
// pairwise merging, earliest completion first). Repeating such a schedule
// back-to-back yields throughput 1/makespan; the vs_baselines and
// makespan-vs-steady-state comparisons quantify how much pipelining
// (overlapping consecutive operations) buys.

#include <vector>

#include "num/rational.h"
#include "platform/paper_instances.h"

namespace ssco::baselines {

using num::Rational;

struct MakespanResult {
  /// Completion time of ONE operation under the greedy schedule.
  Rational makespan;
  /// Steady-state throughput when operations are executed back-to-back
  /// without overlap: 1 / makespan.
  Rational serial_throughput;
  /// Number of point-to-point transfers performed.
  std::size_t transfers = 0;
};

/// Greedy earliest-finish-time scheduler for a single scatter: at every
/// event, each idle source-side port starts transferring the pending message
/// whose delivery (via the remaining shortest path) would finish earliest.
[[nodiscard]] MakespanResult scatter_makespan(
    const platform::ScatterInstance& instance);

/// Greedy scheduler for a single reduce: repeatedly pick the adjacent merge
/// (including the transfer of one operand to the other's node, or both to a
/// faster third location among the two endpoints) that completes earliest;
/// finally ship the result to the target.
[[nodiscard]] MakespanResult reduce_makespan(
    const platform::ReduceInstance& instance);

}  // namespace ssco::baselines
