#include "baselines/fixed_route.h"

#include <stdexcept>

namespace ssco::baselines {

FixedRouteResult evaluate_fixed_routes(const platform::Platform& platform,
                                       std::vector<std::vector<EdgeId>> routes,
                                       const Rational& message_size) {
  const auto& graph = platform.graph();
  std::vector<Rational> out_busy(graph.num_nodes(), Rational(0));
  std::vector<Rational> in_busy(graph.num_nodes(), Rational(0));

  for (const auto& route : routes) {
    for (std::size_t i = 0; i < route.size(); ++i) {
      EdgeId e = route[i];
      if (e >= graph.num_edges()) {
        throw std::invalid_argument("evaluate_fixed_routes: bad edge id");
      }
      if (i > 0 && graph.edge(route[i - 1]).dst != graph.edge(e).src) {
        throw std::invalid_argument(
            "evaluate_fixed_routes: route is not a connected path");
      }
      Rational time = message_size * platform.edge_cost(e);
      out_busy[graph.edge(e).src] += time;
      in_busy[graph.edge(e).dst] += time;
    }
  }

  FixedRouteResult result;
  result.routes = std::move(routes);
  result.bottleneck.busy = Rational(0);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (out_busy[n] > result.bottleneck.busy) {
      result.bottleneck = PortLoad{n, true, out_busy[n]};
    }
    if (in_busy[n] > result.bottleneck.busy) {
      result.bottleneck = PortLoad{n, false, in_busy[n]};
    }
  }
  if (result.bottleneck.busy.is_zero()) {
    throw std::invalid_argument("evaluate_fixed_routes: no traffic at all");
  }
  result.throughput = result.bottleneck.busy.reciprocal();
  return result;
}

}  // namespace ssco::baselines
