#pragma once
// Single-reduction-tree baselines (paper Sec. 5's conventional schemes).
//
// A conventional pipelined reduce repeats ONE reduction tree every period;
// its steady-state throughput is 1 / (worst port or CPU busy-time per
// operation) — ReductionTree::bottleneck_time. Three classic shapes:
//  * flat: every participant ships its value to the target, which merges
//    left-to-right (the MPI_Reduce default on a star);
//  * chain: the partial result accumulates through participants in rank
//    order (minimal compute concurrency, maximal pipelining);
//  * binomial: balanced recursive halving (the MPI_Reduce default on
//    homogeneous clusters), merging each pair at the faster endpoint.
// All transfers follow shortest paths. The paper's LP dominates every such
// tree — its solution may combine MANY trees (Figs. 11-12) — which the tests
// and the vs_baselines bench quantify.

#include "core/reduction_tree.h"
#include "platform/paper_instances.h"

namespace ssco::baselines {

using core::ReductionTree;

[[nodiscard]] ReductionTree flat_reduce_tree(
    const platform::ReduceInstance& instance);
[[nodiscard]] ReductionTree chain_reduce_tree(
    const platform::ReduceInstance& instance);
[[nodiscard]] ReductionTree binomial_reduce_tree(
    const platform::ReduceInstance& instance);

/// Steady-state throughput of pipelining `tree` alone:
/// 1 / bottleneck_time.
[[nodiscard]] num::Rational single_tree_throughput(
    const platform::ReduceInstance& instance, const ReductionTree& tree);

}  // namespace ssco::baselines
