#pragma once
// Throughput of fixed single-path routings under the one-port model.
//
// The classic alternative to the paper's LP: pick one route per message type
// (shortest path, as an MPI implementation over a routing table would) and
// pipeline greedily. In steady state the throughput of such a scheme is
// exactly 1 / (worst port busy-time per operation): every operation pushes
// one message of each type through its route, loading each traversed node's
// send and receive ports by size * c(e). This evaluator scores any route
// family; the scatter/gossip baselines build the families.

#include <vector>

#include "graph/digraph.h"
#include "num/rational.h"
#include "platform/platform.h"

namespace ssco::baselines {

using graph::EdgeId;
using graph::NodeId;
using num::Rational;

struct PortLoad {
  NodeId node = graph::kInvalidId;
  bool is_send = false;
  Rational busy;  // per operation
};

struct FixedRouteResult {
  /// Operations per time-unit: 1 / bottleneck busy-time.
  Rational throughput;
  /// The limiting port.
  PortLoad bottleneck;
  /// One route (edge sequence) per commodity, as evaluated.
  std::vector<std::vector<EdgeId>> routes;
};

/// Evaluates the given routes (one per commodity; empty route = origin equals
/// destination, no traffic). Every route's messages have size `message_size`.
[[nodiscard]] FixedRouteResult evaluate_fixed_routes(
    const platform::Platform& platform,
    std::vector<std::vector<EdgeId>> routes, const Rational& message_size);

}  // namespace ssco::baselines
