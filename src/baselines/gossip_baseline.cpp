#include "baselines/gossip_baseline.h"

#include "graph/paths.h"

namespace ssco::baselines {

FixedRouteResult gossip_shortest_path(
    const platform::GossipInstance& instance) {
  std::vector<std::vector<EdgeId>> routes;
  for (NodeId s : instance.sources) {
    auto tree = graph::dijkstra(instance.platform.graph(),
                                instance.platform.edge_costs(), s);
    for (NodeId t : instance.targets) {
      if (s == t) continue;
      routes.push_back(tree.path_to(t, instance.platform.graph()));
    }
  }
  return evaluate_fixed_routes(instance.platform, std::move(routes),
                               instance.message_size);
}

}  // namespace ssco::baselines
