#pragma once
// The concrete platforms used in the paper's worked examples and experiments.
//
//  * fig2_toy()      — Sec. 3.2 toy scatter platform (source, 2 relays,
//                      2 targets). Expected optimal throughput: TP = 1/2.
//  * fig6_triangle() — Sec. 4.3 three-processor reduce example (full mesh,
//                      unit link costs, node 0 twice as fast). Expected
//                      TP = 1 with period 3.
//  * fig9_tiers()    — Sec. 4.7 Tiers-generated 14-node platform, 8
//                      participating hosts, message size 10, task time
//                      10/s_i, target node 6 (logical index 4). The paper
//                      reports TP = 2/9. Link *speeds* are read off Fig. 9
//                      (values are bandwidths; cost = 1/bandwidth); the
//                      figure does not unambiguously map every label to an
//                      edge, so the mapping documented in DESIGN.md is used.
//
// Each instance bundles the platform with the operation's role assignment.

#include <vector>

#include "platform/platform.h"

namespace ssco::platform {

/// Roles for a (series of) scatter: one source streaming distinct messages to
/// each target. Message size multiplies edge costs uniformly.
struct ScatterInstance {
  Platform platform;
  NodeId source = graph::kInvalidId;
  std::vector<NodeId> targets;
  Rational message_size{1};
};

/// Roles for a (series of) reduce: `participants[i]` holds the value of
/// logical index i (the non-commutative operator makes the order load-
/// bearing). All partial values share `message_size`; every reduction task
/// costs `task_work` units of compute.
struct ReduceInstance {
  Platform platform;
  std::vector<NodeId> participants;
  NodeId target = graph::kInvalidId;
  Rational message_size{1};
  Rational task_work{1};
};

/// Roles for a (series of) personalized all-to-all (gossip, Sec. 3.5).
struct GossipInstance {
  Platform platform;
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  Rational message_size{1};
};

[[nodiscard]] ScatterInstance fig2_toy();
[[nodiscard]] ReduceInstance fig6_triangle();
[[nodiscard]] ReduceInstance fig9_tiers();

}  // namespace ssco::platform
