#include "platform/paper_instances.h"

namespace ssco::platform {

ScatterInstance fig2_toy() {
  PlatformBuilder b;
  NodeId ps = b.add_node("Ps");
  NodeId pa = b.add_node("Pa");
  NodeId pb = b.add_node("Pb");
  NodeId p0 = b.add_node("P0");
  NodeId p1 = b.add_node("P1");
  // Downward directed links exactly as drawn in Fig. 2(a).
  b.add_directed_link(ps, pa, Rational(1));
  b.add_directed_link(ps, pb, Rational(1));
  b.add_directed_link(pa, p0, Rational(2, 3));
  b.add_directed_link(pb, p0, Rational(4, 3));
  b.add_directed_link(pb, p1, Rational(4, 3));

  ScatterInstance inst;
  inst.platform = b.build();
  inst.source = ps;
  inst.targets = {p0, p1};
  inst.message_size = Rational(1);
  return inst;
}

ReduceInstance fig6_triangle() {
  PlatformBuilder b;
  // "Every processor can process any task in one time-unit, except node 0
  // which can process any two tasks in one time-unit."
  NodeId p0 = b.add_node("P0", Rational(2));
  NodeId p1 = b.add_node("P1", Rational(1));
  NodeId p2 = b.add_node("P2", Rational(1));
  b.add_link(p0, p1, Rational(1));
  b.add_link(p0, p2, Rational(1));
  b.add_link(p1, p2, Rational(1));

  ReduceInstance inst;
  inst.platform = b.build();
  inst.participants = {p0, p1, p2};
  inst.target = p0;
  inst.message_size = Rational(1);
  inst.task_work = Rational(1);
  return inst;
}

ReduceInstance fig9_tiers() {
  PlatformBuilder b;
  // Node ids follow Fig. 9's labels. Routers keep the default speed; they are
  // never assigned compute tasks. Host speeds are the s_i printed in Fig. 9.
  NodeId n0 = b.add_node("router0");
  NodeId n1 = b.add_node("router1");
  NodeId n2 = b.add_node("router2");
  NodeId n3 = b.add_node("router3");
  NodeId n4 = b.add_node("router4");
  NodeId n5 = b.add_node("router5");
  NodeId n6 = b.add_node("host6/idx4", Rational(92));
  NodeId n7 = b.add_node("host7/idx6", Rational(64));
  NodeId n8 = b.add_node("host8/idx1", Rational(55));
  NodeId n9 = b.add_node("host9/idx3", Rational(75));
  NodeId n10 = b.add_node("host10/idx7", Rational(17));
  NodeId n11 = b.add_node("host11/idx0", Rational(15));
  NodeId n12 = b.add_node("host12/idx5", Rational(38));
  NodeId n13 = b.add_node("host13/idx2", Rational(79));

  // Edge costs are 1/bandwidth: Fig. 9 labels links with speeds (the paper's
  // LAN stars carry the fast "1000" links; the WAN core the slow single-digit
  // ones). The adjacency below is recovered from the routes of Figs. 10-12.
  auto link = [&b](NodeId a, NodeId c, std::int64_t bandwidth) {
    b.add_link(a, c, Rational(1, bandwidth));
  };
  // WAN core.
  link(n0, n1, 10);
  link(n0, n5, 5);
  link(n1, n2, 8);
  link(n2, n3, 2);
  link(n4, n5, 14);
  // MAN / attachment links.
  link(n4, n10, 4);
  link(n4, n12, 182);
  link(n5, n12, 295);
  link(n2, n6, 266);
  link(n2, n8, 208);
  link(n3, n6, 240);
  link(n3, n8, 144);
  // LAN links.
  link(n6, n7, 1000);
  link(n8, n9, 1000);
  link(n10, n11, 1000);
  link(n12, n13, 1000);

  ReduceInstance inst;
  inst.platform = b.build();
  // participants[i] = node holding logical value v_i (Fig. 9's "index i").
  inst.participants = {n11, n8, n13, n9, n6, n12, n7, n10};
  inst.target = n6;  // logical index 4
  inst.message_size = Rational(10);
  inst.task_work = Rational(10);  // task time = 10 / s_i
  return inst;
}

}  // namespace ssco::platform
