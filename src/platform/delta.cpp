#include "platform/delta.h"

#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace ssco::platform {

namespace {

using graph::kInvalidId;

void check_node(const Platform& base, NodeId n, const char* what) {
  if (n >= base.num_nodes()) {
    throw std::invalid_argument(
        std::string("apply_delta: dangling node id in ") + what);
  }
}

}  // namespace

DeltaResult apply_delta(const Platform& base, const PlatformDelta& delta) {
  const std::size_t base_nodes = base.num_nodes();
  const std::size_t base_edges = base.num_edges();
  // Ids addressable by the delta: base ids plus this delta's own additions.
  const std::size_t addressable_nodes = base_nodes + delta.node_adds.size();

  // ---- validation ---------------------------------------------------------
  std::unordered_set<EdgeId> cost_changed;
  for (const auto& change : delta.cost_changes) {
    if (change.edge >= base_edges) {
      throw std::invalid_argument("apply_delta: dangling edge id in cost change");
    }
    if (change.cost.signum() <= 0) {
      throw std::invalid_argument("apply_delta: edge cost must be positive");
    }
    if (!cost_changed.insert(change.edge).second) {
      throw std::invalid_argument("apply_delta: edge cost changed twice");
    }
  }
  std::unordered_set<NodeId> speed_changed;
  for (const auto& change : delta.speed_changes) {
    check_node(base, change.node, "speed change");
    if (change.speed.signum() <= 0) {
      throw std::invalid_argument("apply_delta: node speed must be positive");
    }
    if (!speed_changed.insert(change.node).second) {
      throw std::invalid_argument("apply_delta: node speed changed twice");
    }
  }
  std::unordered_set<EdgeId> removed_edges;
  for (EdgeId e : delta.edge_removes) {
    if (e >= base_edges) {
      throw std::invalid_argument("apply_delta: dangling edge id in removal");
    }
    if (!removed_edges.insert(e).second) {
      throw std::invalid_argument("apply_delta: edge removed twice");
    }
  }
  std::unordered_set<NodeId> removed_nodes;
  for (NodeId n : delta.node_removes) {
    check_node(base, n, "node removal");
    if (!removed_nodes.insert(n).second) {
      throw std::invalid_argument("apply_delta: node removed twice");
    }
  }
  for (const auto& add : delta.node_adds) {
    if (add.speed.signum() <= 0) {
      throw std::invalid_argument("apply_delta: node speed must be positive");
    }
    // '.' joins node names into edge tags in the LP builders
    // (core/lp_names.h); a dotted node name could alias two distinct edges
    // into one LP entity name and silently degrade warm-start mapping.
    if (add.name.find('.') != std::string::npos) {
      throw std::invalid_argument(
          "apply_delta: node name must not contain '.'");
    }
  }
  for (const auto& add : delta.edge_adds) {
    if (add.src >= addressable_nodes || add.dst >= addressable_nodes) {
      throw std::invalid_argument("apply_delta: dangling node id in edge add");
    }
    if (add.src == add.dst) {
      throw std::invalid_argument("apply_delta: self-loop edge add");
    }
    if (removed_nodes.count(add.src) || removed_nodes.count(add.dst)) {
      throw std::invalid_argument("apply_delta: edge add touches removed node");
    }
    if (add.cost.signum() <= 0) {
      throw std::invalid_argument("apply_delta: edge cost must be positive");
    }
  }

  // ---- rebuild ------------------------------------------------------------
  DeltaResult out;
  out.node_map.assign(base_nodes, kInvalidId);
  out.edge_map.assign(base_edges, kInvalidId);

  graph::Digraph topo;
  std::vector<Rational> costs;
  std::vector<Rational> speeds;
  std::vector<std::string> names;
  std::unordered_set<std::string> name_set;

  // Effective per-base-id metrics after point changes.
  std::vector<Rational> base_costs = base.edge_costs();
  for (const auto& change : delta.cost_changes) {
    base_costs[change.edge] = change.cost;
  }
  std::vector<Rational> base_speeds;
  base_speeds.reserve(base_nodes);
  for (NodeId n = 0; n < base_nodes; ++n) base_speeds.push_back(base.node_speed(n));
  for (const auto& change : delta.speed_changes) {
    base_speeds[change.node] = change.speed;
  }

  // Surviving base nodes, in base order; then additions.
  for (NodeId n = 0; n < base_nodes; ++n) {
    if (removed_nodes.count(n)) continue;
    out.node_map[n] = topo.add_node();
    speeds.push_back(base_speeds[n]);
    names.push_back(base.node_name(n));
    name_set.insert(base.node_name(n));
  }
  // Delta-address (base id space extended by additions) -> new id.
  std::vector<NodeId> address_map = out.node_map;
  std::size_t auto_name_counter = 0;
  for (const auto& add : delta.node_adds) {
    NodeId id = topo.add_node();
    address_map.push_back(id);
    speeds.push_back(add.speed);
    std::string name = add.name;
    if (name.empty()) {
      // Auto-name like PlatformBuilder, but collision-free: after a
      // non-tail removal the surviving "P<k>" names no longer match their
      // new ids, so probe upward until a free name appears.
      auto_name_counter = std::max<std::size_t>(auto_name_counter, id);
      do {
        name = "P" + std::to_string(auto_name_counter++);
      } while (name_set.count(name));
      name_set.insert(name);
    } else if (!name_set.insert(name).second) {
      throw std::invalid_argument("apply_delta: duplicate node name \"" + name +
                                  "\"");
    }
    names.push_back(std::move(name));
  }

  // Surviving base edges, in base order; then additions.
  for (EdgeId e = 0; e < base_edges; ++e) {
    if (removed_edges.count(e)) continue;
    const auto& edge = base.graph().edge(e);
    const NodeId src = out.node_map[edge.src];
    const NodeId dst = out.node_map[edge.dst];
    if (src == kInvalidId || dst == kInvalidId) continue;  // endpoint removed
    out.edge_map[e] = topo.add_edge(src, dst);
    costs.push_back(base_costs[e]);
  }
  for (const auto& add : delta.edge_adds) {
    const NodeId src = address_map[add.src];
    const NodeId dst = address_map[add.dst];
    if (topo.has_edge(src, dst)) {
      throw std::invalid_argument("apply_delta: edge add duplicates an edge");
    }
    topo.add_edge(src, dst);
    costs.push_back(add.cost);
  }

  out.platform = Platform(std::move(topo), std::move(costs), std::move(speeds),
                          std::move(names));
  return out;
}

}  // namespace ssco::platform
