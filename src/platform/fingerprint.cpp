#include "platform/fingerprint.h"

#include <algorithm>
#include <bit>

namespace ssco::platform {

namespace {

// splitmix64 finalizer — the same bijective mixer graph/rng.h builds on.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Order-DEPENDENT combine; multisets are sorted before folding so the
// result is canonical.
std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix(h + 0x9e3779b97f4a7c15ull + v);
}

std::uint64_t hash_rational(const num::Rational& v) {
  // Rational::hash() is deterministic (FNV over limbs), so fingerprints are
  // stable across processes and runs.
  return mix(static_cast<std::uint64_t>(v.hash()) + 0xa24baed4963ee407ull);
}

// Domain-separation tags for the different hash ingredients.
constexpr std::uint64_t kNodeInit = 0x736e6f64ull;   // node color seed
constexpr std::uint64_t kOutTag = 0x6f757401ull;     // out-neighbor fold
constexpr std::uint64_t kInTag = 0x696e5f02ull;      // in-neighbor fold
constexpr std::uint64_t kEdgeTag = 0x65646765ull;    // edge signature
constexpr std::uint64_t kFinalTag = 0x73736366ull;   // final fold
constexpr std::uint64_t kBlankCost = 0x626c6e6bull;  // metric-blind cost
constexpr std::uint64_t kSourceTag = 0x73726301ull;
constexpr std::uint64_t kTargetTag = 0x74677402ull;
constexpr std::uint64_t kParticipantTag = 0x70727403ull;
constexpr std::uint64_t kReduceTargetTag = 0x72647404ull;
constexpr std::uint64_t kGossipSourceTag = 0x67737205ull;
constexpr std::uint64_t kScatterOp = 0x6f702d73ull;
constexpr std::uint64_t kGossipOp = 0x6f702d67ull;
constexpr std::uint64_t kReduceOp = 0x6f702d72ull;

/// One Weisfeiler-Leman refinement digest. Node ids never enter the hash:
/// colors start from role seeds (+ speeds when `with_metrics`), each round
/// folds the SORTED multiset of neighbor (color, cost) pairs, and the final
/// digest folds the sorted multiset of node colors and edge signatures.
std::uint64_t wl_digest(const Platform& p,
                        const std::vector<std::uint64_t>& role_seed,
                        bool with_metrics) {
  const graph::Digraph& g = p.graph();
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();

  auto cost_hash = [&](graph::EdgeId e) {
    return with_metrics ? hash_rational(p.edge_cost(e)) : kBlankCost;
  };

  std::vector<std::uint64_t> color(n), next(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    std::uint64_t c = combine(kNodeInit, role_seed.empty() ? 0 : role_seed[v]);
    if (with_metrics) c = combine(c, hash_rational(p.node_speed(v)));
    color[v] = c;
  }

  // Enough rounds for a color to see past the graph's likely diameter;
  // refinement past stabilization is a no-op for discrimination but keeps
  // the digest deterministic and cheap (m ~ hundreds here).
  const std::size_t rounds =
      std::max<std::size_t>(4, std::bit_width(n + 1) + 1);
  std::vector<std::uint64_t> nbr;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (graph::NodeId v = 0; v < n; ++v) {
      nbr.clear();
      for (graph::EdgeId e : g.out_edges(v)) {
        nbr.push_back(combine(kOutTag,
                              combine(color[g.edge(e).dst], cost_hash(e))));
      }
      for (graph::EdgeId e : g.in_edges(v)) {
        nbr.push_back(combine(kInTag,
                              combine(color[g.edge(e).src], cost_hash(e))));
      }
      std::sort(nbr.begin(), nbr.end());
      std::uint64_t h = color[v];
      for (std::uint64_t x : nbr) h = combine(h, x);
      next[v] = h;
    }
    color.swap(next);
  }

  std::vector<std::uint64_t> items;
  items.reserve(n + m);
  for (graph::NodeId v = 0; v < n; ++v) items.push_back(color[v]);
  for (graph::EdgeId e = 0; e < m; ++e) {
    std::uint64_t sig = combine(kEdgeTag, color[g.edge(e).src]);
    sig = combine(sig, color[g.edge(e).dst]);
    items.push_back(combine(sig, cost_hash(e)));
  }
  std::sort(items.begin(), items.end());

  std::uint64_t h = combine(combine(kFinalTag, n), m);
  for (std::uint64_t x : items) h = combine(h, x);
  return h;
}

void seed(std::vector<std::uint64_t>& seeds, graph::NodeId v,
          std::uint64_t tag, std::uint64_t position = 0) {
  seeds[v] = combine(seeds[v], combine(tag, position));
}

}  // namespace

Fingerprint fingerprint_platform(const Platform& platform,
                                 const std::vector<std::uint64_t>& role_seed) {
  Fingerprint fp;
  fp.full = wl_digest(platform, role_seed, /*with_metrics=*/true);
  fp.structure = wl_digest(platform, role_seed, /*with_metrics=*/false);
  return fp;
}

Fingerprint fingerprint(const ScatterInstance& instance) {
  std::vector<std::uint64_t> seeds(instance.platform.num_nodes(), 0);
  seed(seeds, instance.source, kSourceTag);
  for (std::size_t i = 0; i < instance.targets.size(); ++i) {
    seed(seeds, instance.targets[i], kTargetTag, i + 1);
  }
  Fingerprint fp = fingerprint_platform(instance.platform, seeds);
  fp.full = combine(combine(fp.full, kScatterOp),
                    hash_rational(instance.message_size));
  fp.structure = combine(fp.structure, kScatterOp);
  return fp;
}

Fingerprint fingerprint(const GossipInstance& instance) {
  std::vector<std::uint64_t> seeds(instance.platform.num_nodes(), 0);
  for (std::size_t i = 0; i < instance.sources.size(); ++i) {
    seed(seeds, instance.sources[i], kGossipSourceTag, i + 1);
  }
  for (std::size_t i = 0; i < instance.targets.size(); ++i) {
    seed(seeds, instance.targets[i], kTargetTag, i + 1);
  }
  Fingerprint fp = fingerprint_platform(instance.platform, seeds);
  fp.full = combine(combine(fp.full, kGossipOp),
                    hash_rational(instance.message_size));
  fp.structure = combine(fp.structure, kGossipOp);
  return fp;
}

Fingerprint fingerprint(const ReduceInstance& instance) {
  std::vector<std::uint64_t> seeds(instance.platform.num_nodes(), 0);
  for (std::size_t i = 0; i < instance.participants.size(); ++i) {
    seed(seeds, instance.participants[i], kParticipantTag, i + 1);
  }
  seed(seeds, instance.target, kReduceTargetTag);
  Fingerprint fp = fingerprint_platform(instance.platform, seeds);
  fp.full = combine(combine(fp.full, kReduceOp),
                    hash_rational(instance.message_size));
  fp.full = combine(fp.full, hash_rational(instance.task_work));
  fp.structure = combine(fp.structure, kReduceOp);
  return fp;
}

bool same_shape(const Platform& a, const Platform& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.node_name(v) != b.node_name(v)) return false;
  }
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    if (a.graph().edge(e).src != b.graph().edge(e).src ||
        a.graph().edge(e).dst != b.graph().edge(e).dst) {
      return false;
    }
  }
  return true;
}

bool same_platform(const Platform& a, const Platform& b) {
  if (!same_shape(a, b)) return false;
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    if (a.edge_cost(e) != b.edge_cost(e)) return false;
  }
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.node_speed(v) != b.node_speed(v)) return false;
  }
  return true;
}

bool same_instance(const ScatterInstance& a, const ScatterInstance& b) {
  return a.source == b.source && a.targets == b.targets &&
         a.message_size == b.message_size &&
         same_platform(a.platform, b.platform);
}

bool same_instance(const GossipInstance& a, const GossipInstance& b) {
  return a.sources == b.sources && a.targets == b.targets &&
         a.message_size == b.message_size &&
         same_platform(a.platform, b.platform);
}

bool same_instance(const ReduceInstance& a, const ReduceInstance& b) {
  return a.participants == b.participants && a.target == b.target &&
         a.message_size == b.message_size && a.task_work == b.task_work &&
         same_platform(a.platform, b.platform);
}

}  // namespace ssco::platform
