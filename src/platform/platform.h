#pragma once
// Heterogeneous platform model (paper Sec. 2).
//
// A Platform is the edge-weighted graph G = (V, E, c): c(e) is the time to
// move one *unit* of message across edge e (so a message of size s occupies
// both ports for s * c(e) time). Nodes additionally carry a compute speed:
// a computation task of `work` units takes work / speed(P) time on P —
// Sec. 4.7 uses exactly this form (task time 10/s_i). The one-port model
// semantics themselves live in the LP builders and the simulator; this class
// only owns the static description and its validation.

#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "num/rational.h"

namespace ssco::platform {

using graph::Digraph;
using graph::EdgeId;
using graph::NodeId;
using num::Rational;

class Platform {
 public:
  Platform() = default;
  /// Takes ownership of a finished graph and its metric layers.
  /// `edge_cost[e]` must be positive for every edge; `node_speed[n]` must be
  /// positive for every node (routers can keep the default speed — they are
  /// simply never handed compute tasks).
  Platform(Digraph graph, std::vector<Rational> edge_cost,
           std::vector<Rational> node_speed,
           std::vector<std::string> node_name = {});

  [[nodiscard]] const Digraph& graph() const { return graph_; }
  [[nodiscard]] std::size_t num_nodes() const { return graph_.num_nodes(); }
  [[nodiscard]] std::size_t num_edges() const { return graph_.num_edges(); }

  /// Time per unit of message on edge e.
  [[nodiscard]] const Rational& edge_cost(EdgeId e) const {
    return edge_cost_[e];
  }
  /// Compute speed of node n (work units per time unit).
  [[nodiscard]] const Rational& node_speed(NodeId n) const {
    return node_speed_[n];
  }
  /// Time for `work` units of computation on node n.
  [[nodiscard]] Rational compute_time(NodeId n, const Rational& work) const {
    return work / node_speed_[n];
  }
  /// Time for a message of size `size` on edge e.
  [[nodiscard]] Rational transfer_time(EdgeId e, const Rational& size) const {
    return size * edge_cost_[e];
  }

  [[nodiscard]] const std::string& node_name(NodeId n) const {
    return node_names_[n];
  }
  [[nodiscard]] const std::vector<Rational>& edge_costs() const {
    return edge_cost_;
  }

 private:
  Digraph graph_;
  std::vector<Rational> edge_cost_;
  std::vector<Rational> node_speed_;
  std::vector<std::string> node_names_;
};

/// Incremental construction helper used by generators, examples and tests.
class PlatformBuilder {
 public:
  /// Adds a node; default speed 1.
  NodeId add_node(std::string name = {}, Rational speed = Rational(1));
  /// Adds a bidirectional physical link with the same cost both ways.
  void add_link(NodeId a, NodeId b, Rational cost);
  /// Adds a single directed link (the paper's model allows asymmetry).
  void add_directed_link(NodeId src, NodeId dst, Rational cost);

  [[nodiscard]] Platform build();

 private:
  Digraph graph_;
  std::vector<Rational> edge_cost_;
  std::vector<Rational> node_speed_;
  std::vector<std::string> node_names_;
};

}  // namespace ssco::platform
