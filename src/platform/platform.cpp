#include "platform/platform.h"

#include <stdexcept>

namespace ssco::platform {

Platform::Platform(Digraph graph, std::vector<Rational> edge_cost,
                   std::vector<Rational> node_speed,
                   std::vector<std::string> node_name)
    : graph_(std::move(graph)),
      edge_cost_(std::move(edge_cost)),
      node_speed_(std::move(node_speed)),
      node_names_(std::move(node_name)) {
  if (edge_cost_.size() != graph_.num_edges()) {
    throw std::invalid_argument("Platform: edge_cost size mismatch");
  }
  if (node_speed_.size() != graph_.num_nodes()) {
    throw std::invalid_argument("Platform: node_speed size mismatch");
  }
  for (const Rational& c : edge_cost_) {
    if (c.signum() <= 0) {
      throw std::invalid_argument("Platform: edge costs must be positive");
    }
  }
  for (const Rational& s : node_speed_) {
    if (s.signum() <= 0) {
      throw std::invalid_argument("Platform: node speeds must be positive");
    }
  }
  if (node_names_.empty()) {
    node_names_.reserve(graph_.num_nodes());
    for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
      node_names_.push_back("P" + std::to_string(n));
    }
  } else if (node_names_.size() != graph_.num_nodes()) {
    throw std::invalid_argument("Platform: node_name size mismatch");
  }
}

NodeId PlatformBuilder::add_node(std::string name, Rational speed) {
  NodeId id = graph_.add_node();
  if (name.empty()) name = "P" + std::to_string(id);
  node_names_.push_back(std::move(name));
  node_speed_.push_back(std::move(speed));
  return id;
}

void PlatformBuilder::add_link(NodeId a, NodeId b, Rational cost) {
  graph_.add_bidirectional(a, b);
  edge_cost_.push_back(cost);
  edge_cost_.push_back(std::move(cost));
}

void PlatformBuilder::add_directed_link(NodeId src, NodeId dst, Rational cost) {
  graph_.add_edge(src, dst);
  edge_cost_.push_back(std::move(cost));
}

Platform PlatformBuilder::build() {
  return Platform(std::move(graph_), std::move(edge_cost_),
                  std::move(node_speed_), std::move(node_names_));
}

}  // namespace ssco::platform
