#pragma once
// Text format for platforms and operation roles.
//
// Lets users run the library on their own platforms without writing C++
// (see examples/ssco_solve.cpp). Line-oriented, '#' comments, whitespace
// separated:
//
//   node  <name> [speed]            # speed: rational, default 1
//   link  <a> <b> <cost>            # bidirectional, same cost both ways
//   dlink <src> <dst> <cost>        # directed link
//   scatter <source> <target> [<target> ...]
//   reduce  <target> <participant> [<participant> ...]   # in rank order
//   gossip  from <src> [...] to <dst> [...]
//   size <rational>                 # message size (default 1)
//   work <rational>                 # reduce task work (default 1)
//
// Rationals are "p", "-p", or "p/q". Node names are introduced by `node`
// lines and referenced everywhere else. Exactly one role line (scatter /
// reduce / gossip) is allowed per description.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "platform/paper_instances.h"

namespace ssco::platform {

/// A parsed description: the platform plus at most one operation's roles.
struct PlatformDescription {
  Platform platform;
  std::variant<std::monostate, ScatterInstance, ReduceInstance, GossipInstance>
      operation;

  [[nodiscard]] bool has_scatter() const {
    return std::holds_alternative<ScatterInstance>(operation);
  }
  [[nodiscard]] bool has_reduce() const {
    return std::holds_alternative<ReduceInstance>(operation);
  }
  [[nodiscard]] bool has_gossip() const {
    return std::holds_alternative<GossipInstance>(operation);
  }
};

/// Parses the format above. Throws std::invalid_argument with a line-numbered
/// message on any syntax or semantic error.
[[nodiscard]] PlatformDescription parse_platform(std::istream& in);
[[nodiscard]] PlatformDescription parse_platform_text(std::string_view text);

/// Writes a platform (and optionally roles) back in the same format.
void write_platform(std::ostream& os, const PlatformDescription& description);
[[nodiscard]] std::string platform_to_text(
    const PlatformDescription& description);

}  // namespace ssco::platform
