#pragma once
// Isomorphism-stable platform fingerprints for plan caching.
//
// The plan service (src/service/) keys its cache on a 64-bit digest of the
// planning request: platform structure, edge costs, node speeds, role
// assignment and message sizes. Two digests are computed per request:
//
//  * `full`      — everything that determines the optimal plan. Two requests
//                  with equal `full` digests are (modulo a 2^-64 collision,
//                  which the cache guards against with an exact equality
//                  check) the same planning problem.
//  * `structure` — the digest with edge costs, node speeds and message sizes
//                  blanked out. It is stable across the metric drift of a
//                  live platform (bandwidth/speed changes), so a cached plan
//                  whose `structure` matches a request is a warm-start
//                  candidate: same LP shape and names, different numbers —
//                  exactly what lp/warm_start.h re-solves incrementally.
//
// Both digests are ISOMORPHISM-STABLE: node ids and edge insertion order do
// not enter the hash (node NAMES are also excluded — they commonly encode
// ids). Instead a Weisfeiler-Leman color refinement assigns each node a
// label-independent color from its role, metrics and neighborhood, and the
// digest folds the sorted multiset of node colors and edge signatures. A
// relabeled copy of a platform (with correspondingly relabeled roles)
// therefore fingerprints identically, while any change to topology, roles,
// or (for `full`) metrics moves the digest.

#include <cstdint>
#include <vector>

#include "platform/paper_instances.h"
#include "platform/platform.h"

namespace ssco::platform {

struct Fingerprint {
  /// Digest of the complete planning problem (see file comment).
  std::uint64_t full = 0;
  /// Metric-blind digest: topology + roles only. Equal `structure` with
  /// different `full` means "same shape, drifted numbers" — a warm hit.
  std::uint64_t structure = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Fingerprints a bare platform. `role_seed` (optional, per-node) folds the
/// caller's role assignment into the initial node colors; nodes with seed 0
/// are unmarked. Two isomorphic platforms with correspondingly permuted
/// seeds fingerprint identically.
[[nodiscard]] Fingerprint fingerprint_platform(
    const Platform& platform,
    const std::vector<std::uint64_t>& role_seed = {});

/// Request fingerprints: platform + roles + (full only) message sizes.
/// Scatter targets, gossip sources/targets and reduce participants are
/// seeded with their LIST POSITION — the paper's reduce operator is
/// non-commutative, and scatter/gossip commodity order is part of the plan.
[[nodiscard]] Fingerprint fingerprint(const ScatterInstance& instance);
[[nodiscard]] Fingerprint fingerprint(const GossipInstance& instance);
[[nodiscard]] Fingerprint fingerprint(const ReduceInstance& instance);

/// Exact shape identity under the IDENTITY node mapping: same node count,
/// same names, same edge list (same src/dst per EdgeId). Costs and speeds
/// are free. This is the precondition for serving a request from a cached
/// basis: the LP builders name every row and variable on node names
/// (core/lp_names.h), so same shape == same LP names == a basis that maps
/// one-to-one.
[[nodiscard]] bool same_shape(const Platform& a, const Platform& b);

/// same_shape plus exact metric equality (costs and speeds).
[[nodiscard]] bool same_platform(const Platform& a, const Platform& b);

/// Full request identity: same_platform + identical roles and sizes. The
/// cache's collision guard for exact hits.
[[nodiscard]] bool same_instance(const ScatterInstance& a,
                                 const ScatterInstance& b);
[[nodiscard]] bool same_instance(const GossipInstance& a,
                                 const GossipInstance& b);
[[nodiscard]] bool same_instance(const ReduceInstance& a,
                                 const ReduceInstance& b);

}  // namespace ssco::platform
