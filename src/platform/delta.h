#pragma once
// Platform mutation layer for dynamic re-optimization.
//
// The paper models a static platform, but a serving system tracks a live
// one: link bandwidths drift, links fail, machines join and leave. A
// PlatformDelta describes one batch of such changes against a base
// Platform; apply_delta() validates it (positive costs/speeds, no dangling
// ids, consistent name map) and rebuilds the platform, returning id remap
// tables so role assignments (sources, targets, participants) and cached
// solutions can follow the surviving nodes and edges.
//
// Id conventions:
//  * all node/edge ids in the delta refer to the BASE platform's id space;
//  * the k-th added node is addressed as base.num_nodes() + k (so an added
//    edge can connect a node added in the same delta);
//  * removing a node removes every incident edge implicitly.
//
// The rebuilt platform keeps surviving nodes and edges in base id order
// (then additions), which keeps most LP variable/row names stable across a
// delta — exactly what the warm-start name mapping (lp/warm_start.h) needs
// to pay off.

#include <string>
#include <vector>

#include "platform/platform.h"

namespace ssco::platform {

struct PlatformDelta {
  struct CostChange {
    EdgeId edge = graph::kInvalidId;
    Rational cost;
  };
  struct SpeedChange {
    NodeId node = graph::kInvalidId;
    Rational speed;
  };
  struct EdgeAdd {
    NodeId src = graph::kInvalidId;
    NodeId dst = graph::kInvalidId;
    Rational cost;
  };
  struct NodeAdd {
    std::string name;  // empty: auto-named like PlatformBuilder
    Rational speed{1};
  };

  std::vector<CostChange> cost_changes;
  std::vector<SpeedChange> speed_changes;
  std::vector<EdgeId> edge_removes;
  std::vector<NodeId> node_removes;
  std::vector<NodeAdd> node_adds;
  std::vector<EdgeAdd> edge_adds;

  [[nodiscard]] bool empty() const {
    return cost_changes.empty() && speed_changes.empty() &&
           edge_removes.empty() && node_removes.empty() &&
           node_adds.empty() && edge_adds.empty();
  }
};

struct DeltaResult {
  Platform platform;
  /// Base NodeId -> new NodeId, kInvalidId for removed nodes. Added nodes
  /// occupy ids [survivors, survivors + node_adds).
  std::vector<NodeId> node_map;
  /// Base EdgeId -> new EdgeId, kInvalidId for removed edges (explicitly or
  /// via an endpoint's removal).
  std::vector<EdgeId> edge_map;
};

/// Applies `delta` to `base` and returns the rebuilt platform plus id maps.
/// Throws std::invalid_argument on any invalid delta: non-positive cost or
/// speed, dangling node/edge id, duplicate removal, an added edge that
/// duplicates an existing one or touches a removed node, or an added node
/// name that collides with a surviving name.
[[nodiscard]] DeltaResult apply_delta(const Platform& base,
                                      const PlatformDelta& delta);

}  // namespace ssco::platform
