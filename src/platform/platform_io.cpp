#include "platform/platform_io.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ssco::platform {

namespace {

struct NodeSpec {
  std::string name;
  Rational speed{1};
};

struct LinkSpec {
  std::string a;
  std::string b;
  Rational cost;
  bool directed = false;
  std::size_t line = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("platform description line " +
                              std::to_string(line) + ": " + message);
}

Rational parse_rational(std::size_t line, const std::string& token) {
  try {
    return Rational(token);
  } catch (const std::exception&) {
    fail(line, "bad rational '" + token + "'");
  }
}

}  // namespace

PlatformDescription parse_platform(std::istream& in) {
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;
  std::map<std::string, std::size_t> node_index;
  Rational message_size{1};
  Rational task_work{1};

  enum class RoleKind { kNone, kScatter, kReduce, kGossip };
  RoleKind role = RoleKind::kNone;
  std::vector<std::string> role_tokens;  // raw tokens after the keyword
  std::size_t role_line = 0;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;

    if (keyword == "node") {
      NodeSpec spec;
      if (!(line >> spec.name)) fail(line_no, "node needs a name");
      std::string speed;
      if (line >> speed) spec.speed = parse_rational(line_no, speed);
      if (node_index.contains(spec.name)) {
        fail(line_no, "duplicate node '" + spec.name + "'");
      }
      node_index[spec.name] = nodes.size();
      nodes.push_back(std::move(spec));
    } else if (keyword == "link" || keyword == "dlink") {
      LinkSpec spec;
      std::string cost;
      if (!(line >> spec.a >> spec.b >> cost)) {
        fail(line_no, keyword + " needs <a> <b> <cost>");
      }
      spec.cost = parse_rational(line_no, cost);
      spec.directed = keyword == "dlink";
      spec.line = line_no;
      links.push_back(std::move(spec));
    } else if (keyword == "size") {
      std::string v;
      if (!(line >> v)) fail(line_no, "size needs a value");
      message_size = parse_rational(line_no, v);
    } else if (keyword == "work") {
      std::string v;
      if (!(line >> v)) fail(line_no, "work needs a value");
      task_work = parse_rational(line_no, v);
    } else if (keyword == "scatter" || keyword == "reduce" ||
               keyword == "gossip") {
      if (role != RoleKind::kNone) {
        fail(line_no, "only one operation line is allowed");
      }
      role = keyword == "scatter"  ? RoleKind::kScatter
             : keyword == "reduce" ? RoleKind::kReduce
                                   : RoleKind::kGossip;
      role_line = line_no;
      std::string token;
      while (line >> token) role_tokens.push_back(std::move(token));
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (nodes.empty()) {
    throw std::invalid_argument("platform description: no nodes");
  }

  PlatformBuilder builder;
  for (const NodeSpec& n : nodes) builder.add_node(n.name, n.speed);
  auto resolve = [&node_index](std::size_t line, const std::string& name) {
    auto it = node_index.find(name);
    if (it == node_index.end()) fail(line, "unknown node '" + name + "'");
    return it->second;
  };
  for (const LinkSpec& l : links) {
    std::size_t a = resolve(l.line, l.a);
    std::size_t b = resolve(l.line, l.b);
    if (l.directed) {
      builder.add_directed_link(a, b, l.cost);
    } else {
      builder.add_link(a, b, l.cost);
    }
  }

  PlatformDescription out;
  out.platform = builder.build();

  switch (role) {
    case RoleKind::kNone:
      break;
    case RoleKind::kScatter: {
      if (role_tokens.size() < 2) {
        fail(role_line, "scatter needs <source> <target>...");
      }
      ScatterInstance inst;
      inst.platform = out.platform;
      inst.source = resolve(role_line, role_tokens[0]);
      for (std::size_t i = 1; i < role_tokens.size(); ++i) {
        inst.targets.push_back(resolve(role_line, role_tokens[i]));
      }
      inst.message_size = message_size;
      out.operation = std::move(inst);
      break;
    }
    case RoleKind::kReduce: {
      if (role_tokens.size() < 2) {
        fail(role_line, "reduce needs <target> <participant>...");
      }
      ReduceInstance inst;
      inst.platform = out.platform;
      inst.target = resolve(role_line, role_tokens[0]);
      for (std::size_t i = 1; i < role_tokens.size(); ++i) {
        inst.participants.push_back(resolve(role_line, role_tokens[i]));
      }
      inst.message_size = message_size;
      inst.task_work = task_work;
      out.operation = std::move(inst);
      break;
    }
    case RoleKind::kGossip: {
      GossipInstance inst;
      inst.platform = out.platform;
      bool in_targets = false;
      bool saw_from = false;
      for (const std::string& token : role_tokens) {
        if (token == "from") {
          saw_from = true;
        } else if (token == "to") {
          in_targets = true;
        } else if (in_targets) {
          inst.targets.push_back(resolve(role_line, token));
        } else {
          inst.sources.push_back(resolve(role_line, token));
        }
      }
      if (!saw_from || !in_targets || inst.sources.empty() ||
          inst.targets.empty()) {
        fail(role_line, "gossip needs: from <src>... to <dst>...");
      }
      inst.message_size = message_size;
      out.operation = std::move(inst);
      break;
    }
  }
  return out;
}

PlatformDescription parse_platform_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_platform(in);
}

void write_platform(std::ostream& os,
                    const PlatformDescription& description) {
  const Platform& p = description.platform;
  const auto& g = p.graph();
  for (graph::NodeId n = 0; n < p.num_nodes(); ++n) {
    os << "node " << p.node_name(n);
    if (p.node_speed(n) != Rational(1)) os << " " << p.node_speed(n);
    os << "\n";
  }
  std::vector<bool> written(g.num_edges(), false);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (written[e]) continue;
    const auto& edge = g.edge(e);
    graph::EdgeId reverse = g.find_edge(edge.dst, edge.src);
    if (reverse != graph::kInvalidId && !written[reverse] &&
        p.edge_cost(reverse) == p.edge_cost(e)) {
      os << "link " << p.node_name(edge.src) << " " << p.node_name(edge.dst)
         << " " << p.edge_cost(e) << "\n";
      written[reverse] = true;
    } else {
      os << "dlink " << p.node_name(edge.src) << " " << p.node_name(edge.dst)
         << " " << p.edge_cost(e) << "\n";
    }
    written[e] = true;
  }
  if (const auto* scatter =
          std::get_if<ScatterInstance>(&description.operation)) {
    if (scatter->message_size != Rational(1)) {
      os << "size " << scatter->message_size << "\n";
    }
    os << "scatter " << p.node_name(scatter->source);
    for (graph::NodeId t : scatter->targets) os << " " << p.node_name(t);
    os << "\n";
  } else if (const auto* reduce =
                 std::get_if<ReduceInstance>(&description.operation)) {
    if (reduce->message_size != Rational(1)) {
      os << "size " << reduce->message_size << "\n";
    }
    if (reduce->task_work != Rational(1)) {
      os << "work " << reduce->task_work << "\n";
    }
    os << "reduce " << p.node_name(reduce->target);
    for (graph::NodeId r : reduce->participants) os << " " << p.node_name(r);
    os << "\n";
  } else if (const auto* gossip =
                 std::get_if<GossipInstance>(&description.operation)) {
    if (gossip->message_size != Rational(1)) {
      os << "size " << gossip->message_size << "\n";
    }
    os << "gossip from";
    for (graph::NodeId s : gossip->sources) os << " " << p.node_name(s);
    os << " to";
    for (graph::NodeId t : gossip->targets) os << " " << p.node_name(t);
    os << "\n";
  }
}

std::string platform_to_text(const PlatformDescription& description) {
  std::ostringstream os;
  write_platform(os, description);
  return os.str();
}

}  // namespace ssco::platform
